//! The VM executor: runs compiled bytecode with exactly `flat-exec`'s
//! kernel decomposition, so results, `path_signature`, launch records,
//! and telemetry are bitwise interchangeable with the tree-walking
//! executor at every thread count and grain.
//!
//! The determinism argument is `flat-exec`'s, inherited verbatim:
//! kernels are decomposed by grain only, task results are combined in
//! task order on the calling thread, and `segred`/`segscan` reassociate
//! identically for every thread count. See `crates/exec/src/exec.rs`.
//!
//! The differences are all below the decomposition: a kernel task's
//! "frame" is a clone of three flat register banks instead of a
//! name→`Arc<Value>` map, the body is a `match` over monomorphic
//! opcodes instead of an AST walk, and the sequential combine passes of
//! `segred`/`segscan` run directly on the host frame (safe because
//! registers are never reused, so everything they clobber is dead).

use crate::bytecode::*;
use flat_exec::{ExecConfig, ExecError, ExecLaunch, ExecReport, KernelTelem};
use flat_ir::ast::{Const, Program};
use flat_ir::interp::{self as interp, Thresholds};
use flat_ir::types::ScalarType;
use flat_ir::value::{ArrayVal, Buffer, Value};
use gpu_sim::CmpRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

type Result<T> = std::result::Result<T, ExecError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(ExecError(msg.into()))
}

/// Compile and execute a program on concrete values. Drop-in for
/// `flat_exec::run_program`, returning the same report type.
pub fn run_program(prog: &Program, args: &[Value], cfg: &ExecConfig) -> Result<ExecReport> {
    let compiled = crate::compile::compile(prog)?;
    run_compiled(&compiled, args, cfg)
}

/// Execute an already-compiled program (lets `measure` pay the lowering
/// cost once, outside the timed region).
pub fn run_compiled(
    prog: &CompiledProgram,
    args: &[Value],
    cfg: &ExecConfig,
) -> Result<ExecReport> {
    let pool = match cfg.threads {
        Some(n) => workpool::pool_with(n),
        None => workpool::global(),
    };
    let _span = flat_obs::span("vm", "vm.run");
    if prog.params.len() != args.len() {
        return err(format!(
            "program {} expects {} arguments, got {}",
            prog.name,
            prog.params.len(),
            args.len()
        ));
    }
    // As in `flat_exec::run_program`: a reference-counted telemetry
    // session keeps concurrent runs on the shared pool from clobbering
    // each other's switches or stealing each other's spans.
    let telem_on = cfg.telemetry || cfg.worker_trace;
    let session = telem_on.then(|| pool.telemetry_session(cfg.worker_trace));
    let pool_before = telem_on.then(|| pool.telemetry());
    let vm = Vm {
        prog,
        thresholds: &cfg.thresholds,
        pool: &pool,
        grain: cfg.grain.max(1),
        t0: Instant::now(),
        telem: telem_on,
        cur_tag: AtomicU64::new(0),
    };
    let mut fr = VmFrame {
        ints: vec![0; prog.n_int as usize],
        flts: vec![0.0; prog.n_flt as usize],
        arrs: vec![None; prog.n_arr as usize],
        path: Vec::new(),
        launches: Vec::new(),
        in_kernel: false,
    };
    let bound = bind_args(&mut fr, prog, args);
    let started = Instant::now();
    let eval = bound.and_then(|()| vm.run_func(&mut fr, prog.main));
    let wall_nanos = started.elapsed().as_nanos() as f64;
    let pool_telem = pool_before.map(|b| pool.telemetry().delta_since(&b));
    let mut spans = match &session {
        Some(s) if s.recording_spans() => s.take_spans(),
        _ => Vec::new(),
    };
    drop(session);
    if !spans.is_empty() {
        let own: std::collections::HashSet<u64> =
            fr.launches.iter().map(|l| l.tag).filter(|&t| t != 0).collect();
        spans.retain(|s| own.contains(&s.tag));
    }
    eval?;
    let values: Vec<Value> =
        prog.results.iter().map(|&l| vm.read_value(&fr, l)).collect::<Result<_>>()?;
    if let Some(t) = &pool_telem {
        let total = t.total();
        let m = flat_obs::global().metrics();
        m.add("vm.pool.tasks", total.tasks);
        m.add("vm.pool.steals", total.steals);
        m.add("vm.pool.steal_fails", total.steal_fails);
        m.add("vm.pool.parks", total.parks);
        m.add("vm.pool.busy_ns", total.busy_ns);
        for l in &fr.launches {
            m.observe("vm.kernel_ns", l.nanos as u64);
        }
    }
    Ok(ExecReport {
        values,
        path: fr.path,
        launches: fr.launches,
        wall_nanos,
        threads: pool.threads(),
        grain: cfg.grain.max(1),
        pool: pool_telem,
        spans,
    })
}

fn bind_args(fr: &mut VmFrame, prog: &CompiledProgram, args: &[Value]) -> Result<()> {
    for ((loc, ty, name), a) in prog.params.iter().zip(args) {
        match (loc, a) {
            (Loc::Arr { r }, Value::Array(av)) => {
                fr.arrs[*r as usize] = Some(Arc::new(av.clone()));
            }
            (Loc::Arr { .. }, Value::Scalar(_)) => {
                return err(format!("expected array, {name} is a scalar"));
            }
            (_, Value::Array(_)) => {
                return err(format!("expected scalar, {name} is an array"));
            }
            (&l, Value::Scalar(c)) => {
                if Some(c.scalar_type()) != l.scalar_type() {
                    return err(format!(
                        "program {} argument {name}: expected {}, got {}",
                        prog.name,
                        ty.scalar,
                        c.scalar_type()
                    ));
                }
                write_const(fr, l, *c)?;
            }
        }
    }
    Ok(())
}

/// One evaluation context: the three register banks plus the records a
/// kernel task accumulates privately and the host merges in task order.
pub(crate) struct VmFrame {
    pub(crate) ints: Vec<i64>,
    pub(crate) flts: Vec<f64>,
    pub(crate) arrs: Vec<Option<Arc<ArrayVal>>>,
    path: Vec<CmpRecord>,
    launches: Vec<ExecLaunch>,
    in_kernel: bool,
}

/// A value crossing a task boundary (block partials, scan prefixes):
/// scalars by value, arrays by reference.
#[derive(Clone)]
enum TVal {
    S(Const),
    A(Arc<ArrayVal>),
}

/// One context dimension's binds, prefetched for a task: source array
/// and destination register, width-checked at build time. Sound to hold
/// across body runs because registers are never reused — a body cannot
/// redefine a segop input array.
struct DimPlan {
    binds: Vec<(Arc<ArrayVal>, Loc)>,
}

fn read_const(fr: &VmFrame, l: Loc) -> Result<Const> {
    match l {
        Loc::Int { r, st } => {
            let v = fr.ints[r as usize];
            Ok(match st {
                ScalarType::I64 => Const::I64(v),
                ScalarType::I32 => Const::I32(v as i32),
                ScalarType::Bool => Const::Bool(v != 0),
                _ => return err("corrupt register type"),
            })
        }
        Loc::Flt { r, st } => {
            let v = fr.flts[r as usize];
            Ok(match st {
                ScalarType::F64 => Const::F64(v),
                ScalarType::F32 => Const::F32(v as f32),
                _ => return err("corrupt register type"),
            })
        }
        Loc::Arr { .. } => err("expected scalar, got an array"),
    }
}

fn write_const(fr: &mut VmFrame, l: Loc, c: Const) -> Result<()> {
    match (l, c) {
        (Loc::Int { r, st: ScalarType::I64 }, Const::I64(v)) => fr.ints[r as usize] = v,
        (Loc::Int { r, st: ScalarType::I32 }, Const::I32(v)) => fr.ints[r as usize] = v as i64,
        (Loc::Int { r, st: ScalarType::Bool }, Const::Bool(b)) => fr.ints[r as usize] = b as i64,
        (Loc::Flt { r, st: ScalarType::F64 }, Const::F64(v)) => fr.flts[r as usize] = v,
        (Loc::Flt { r, st: ScalarType::F32 }, Const::F32(v)) => fr.flts[r as usize] = v as f64,
        _ => return err(format!("value type mismatch: {c} into {l}")),
    }
    Ok(())
}

pub(crate) struct Vm<'a> {
    prog: &'a CompiledProgram,
    thresholds: &'a Thresholds,
    pool: &'a workpool::Pool,
    grain: usize,
    t0: Instant,
    telem: bool,
    /// Tag stamped on the current kernel's pool jobs; allocated by
    /// [`workpool::fresh_tag`], unique across concurrent runs.
    cur_tag: AtomicU64,
}

/// A per-task result slot, as in `flat-exec`: the task's value plus its
/// privately recorded threshold comparisons.
type TaskSlot<T> = Mutex<Option<Result<(T, Vec<CmpRecord>)>>>;

fn take_slot<T>(slot: TaskSlot<T>) -> Result<(T, Vec<CmpRecord>)> {
    slot.into_inner()
        .unwrap()
        .ok_or_else(|| ExecError("kernel task did not run".into()))?
}

impl Vm<'_> {
    fn read_op(&self, fr: &VmFrame, op: Operand) -> i64 {
        match op {
            Operand::Const(v) => v,
            Operand::Reg(r) => fr.ints[r as usize],
        }
    }

    fn arr<'f>(&self, fr: &'f VmFrame, r: u32) -> Result<&'f Arc<ArrayVal>> {
        fr.arrs[r as usize]
            .as_ref()
            .ok_or_else(|| ExecError(format!("array register a{r} unbound")))
    }

    fn read_value(&self, fr: &VmFrame, l: Loc) -> Result<Value> {
        match l {
            Loc::Arr { r } => Ok(Value::Array((**self.arr(fr, r)?).clone())),
            _ => Ok(Value::Scalar(read_const(fr, l)?)),
        }
    }

    fn write_value(&self, fr: &mut VmFrame, l: Loc, v: Value) -> Result<()> {
        match (l, v) {
            (Loc::Arr { r }, Value::Array(av)) => {
                fr.arrs[r as usize] = Some(Arc::new(av));
                Ok(())
            }
            (_, Value::Scalar(c)) => write_const(fr, l, c),
            (_, Value::Array(_)) => err("value type mismatch: array into scalar register"),
        }
    }

    fn read_tvals(&self, fr: &VmFrame, locs: &[Loc]) -> Result<Vec<TVal>> {
        locs.iter()
            .map(|&l| match l {
                Loc::Arr { r } => Ok(TVal::A(self.arr(fr, r)?.clone())),
                _ => Ok(TVal::S(read_const(fr, l)?)),
            })
            .collect()
    }

    fn write_tvals(&self, fr: &mut VmFrame, locs: &[Loc], vals: &[TVal]) -> Result<()> {
        for (&l, v) in locs.iter().zip(vals) {
            match (l, v) {
                (Loc::Arr { r }, TVal::A(a)) => fr.arrs[r as usize] = Some(a.clone()),
                (_, TVal::S(c)) => write_const(fr, l, *c)?,
                (_, TVal::A(_)) => {
                    return err("value type mismatch: array into scalar register")
                }
            }
        }
        Ok(())
    }

    /// Copy registers pairwise (neutral elements into accumulators,
    /// accumulators into destinations). Destinations are always fresh
    /// registers, so no scratch pass is needed.
    fn copy_locs(&self, fr: &mut VmFrame, srcs: &[Loc], dsts: &[Loc]) -> Result<()> {
        for (&s, &d) in srcs.iter().zip(dsts) {
            match (s, d) {
                (Loc::Int { r: sr, .. }, Loc::Int { r: dr, .. }) => {
                    fr.ints[dr as usize] = fr.ints[sr as usize]
                }
                (Loc::Flt { r: sr, .. }, Loc::Flt { r: dr, .. }) => {
                    fr.flts[dr as usize] = fr.flts[sr as usize]
                }
                (Loc::Arr { r: sr }, Loc::Arr { r: dr }) => {
                    fr.arrs[dr as usize] = fr.arrs[sr as usize].clone()
                }
                _ => return err("value kind mismatch in binding"),
            }
        }
        Ok(())
    }

    /// A kernel-side frame: a clone of the register banks with private
    /// path/launch records.
    fn task_frame(&self, fr: &VmFrame) -> VmFrame {
        VmFrame {
            ints: fr.ints.clone(),
            flts: fr.flts.clone(),
            arrs: fr.arrs.clone(),
            path: Vec::new(),
            launches: Vec::new(),
            in_kernel: true,
        }
    }

    // -- the dispatch loop --------------------------------------------

    pub(crate) fn run_func(&self, fr: &mut VmFrame, f: FuncId) -> Result<()> {
        let instrs: &[Instr] = &self.prog.funcs[f as usize];
        for ins in instrs {
            match ins {
                Instr::IConst { dst, v } => fr.ints[*dst as usize] = *v,
                Instr::FConst { dst, v } => fr.flts[*dst as usize] = *v,
                Instr::IMov { dst, src } => fr.ints[*dst as usize] = fr.ints[*src as usize],
                Instr::FMov { dst, src } => fr.flts[*dst as usize] = fr.flts[*src as usize],
                Instr::AMov { dst, src } => {
                    fr.arrs[*dst as usize] = fr.arrs[*src as usize].clone()
                }
                Instr::AddI64 { dst, a, b } => {
                    fr.ints[*dst as usize] =
                        fr.ints[*a as usize].wrapping_add(fr.ints[*b as usize])
                }
                Instr::SubI64 { dst, a, b } => {
                    fr.ints[*dst as usize] =
                        fr.ints[*a as usize].wrapping_sub(fr.ints[*b as usize])
                }
                Instr::MulI64 { dst, a, b } => {
                    fr.ints[*dst as usize] =
                        fr.ints[*a as usize].wrapping_mul(fr.ints[*b as usize])
                }
                Instr::MinI64 { dst, a, b } => {
                    fr.ints[*dst as usize] = fr.ints[*a as usize].min(fr.ints[*b as usize])
                }
                Instr::MaxI64 { dst, a, b } => {
                    fr.ints[*dst as usize] = fr.ints[*a as usize].max(fr.ints[*b as usize])
                }
                Instr::NegI64 { dst, a } => {
                    fr.ints[*dst as usize] = fr.ints[*a as usize].wrapping_neg()
                }
                Instr::EqI64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.ints[*a as usize] == fr.ints[*b as usize]) as i64
                }
                Instr::NeqI64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.ints[*a as usize] != fr.ints[*b as usize]) as i64
                }
                Instr::LtI64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.ints[*a as usize] < fr.ints[*b as usize]) as i64
                }
                Instr::LeI64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.ints[*a as usize] <= fr.ints[*b as usize]) as i64
                }
                Instr::AddF64 { dst, a, b } => {
                    fr.flts[*dst as usize] = fr.flts[*a as usize] + fr.flts[*b as usize]
                }
                Instr::SubF64 { dst, a, b } => {
                    fr.flts[*dst as usize] = fr.flts[*a as usize] - fr.flts[*b as usize]
                }
                Instr::MulF64 { dst, a, b } => {
                    fr.flts[*dst as usize] = fr.flts[*a as usize] * fr.flts[*b as usize]
                }
                Instr::DivF64 { dst, a, b } => {
                    fr.flts[*dst as usize] = fr.flts[*a as usize] / fr.flts[*b as usize]
                }
                Instr::MinF64 { dst, a, b } => {
                    fr.flts[*dst as usize] = fr.flts[*a as usize].min(fr.flts[*b as usize])
                }
                Instr::MaxF64 { dst, a, b } => {
                    fr.flts[*dst as usize] = fr.flts[*a as usize].max(fr.flts[*b as usize])
                }
                Instr::NegF64 { dst, a } => fr.flts[*dst as usize] = -fr.flts[*a as usize],
                Instr::EqF64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.flts[*a as usize] == fr.flts[*b as usize]) as i64
                }
                Instr::NeqF64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.flts[*a as usize] != fr.flts[*b as usize]) as i64
                }
                Instr::LtF64 { dst, a, b } => {
                    fr.ints[*dst as usize] = (fr.flts[*a as usize] < fr.flts[*b as usize]) as i64
                }
                // Le(a, b) = !Lt(b, a), the interpreter's NaN rule —
                // deliberately NOT `a <= b`, which differs for NaN.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                Instr::LeF64 { dst, a, b } => {
                    fr.ints[*dst as usize] =
                        (!(fr.flts[*b as usize] < fr.flts[*a as usize])) as i64
                }
                Instr::AddF32 { dst, a, b } => {
                    fr.flts[*dst as usize] =
                        (fr.flts[*a as usize] as f32 + fr.flts[*b as usize] as f32) as f64
                }
                Instr::SubF32 { dst, a, b } => {
                    fr.flts[*dst as usize] =
                        (fr.flts[*a as usize] as f32 - fr.flts[*b as usize] as f32) as f64
                }
                Instr::MulF32 { dst, a, b } => {
                    fr.flts[*dst as usize] =
                        (fr.flts[*a as usize] as f32 * fr.flts[*b as usize] as f32) as f64
                }
                Instr::DivF32 { dst, a, b } => {
                    fr.flts[*dst as usize] =
                        (fr.flts[*a as usize] as f32 / fr.flts[*b as usize] as f32) as f64
                }
                Instr::Not { dst, a } => {
                    fr.ints[*dst as usize] = (fr.ints[*a as usize] == 0) as i64
                }
                Instr::BinGen { op, a, b, dst } => {
                    let x = read_const(fr, *a)?;
                    let y = read_const(fr, *b)?;
                    write_const(fr, *dst, interp::eval_binop(*op, x, y)?)?;
                }
                Instr::UnGen { op, a, dst } => {
                    let x = read_const(fr, *a)?;
                    write_const(fr, *dst, interp::eval_unop(*op, x)?)?;
                }
                Instr::CmpThr { id, factors, dst } => {
                    let mut par: i64 = 1;
                    for fx in factors.iter() {
                        par = par.saturating_mul(self.read_op(fr, *fx));
                    }
                    let taken = par >= self.thresholds.get(*id);
                    fr.path.push(CmpRecord { id: *id, par, taken });
                    fr.ints[*dst as usize] = taken as i64;
                }
                Instr::Index { arr, idxs, dst } => {
                    // Read everything out of the (shared) array before
                    // touching the frame mutably; no Arc clone needed.
                    enum Got {
                        C(Const),
                        A(ArrayVal),
                    }
                    let got = {
                        let a = self.arr(fr, *arr)?;
                        if idxs.len() > a.rank() {
                            return err("too many indices");
                        }
                        let mut off: i64 = 0;
                        for (k, ix) in idxs.iter().enumerate() {
                            let i = self.read_op(fr, *ix);
                            if i < 0 || i >= a.shape[k] {
                                return err(format!(
                                    "index {i} out of bounds for axis {k} of extent {}",
                                    a.shape[k]
                                ));
                            }
                            off = off * a.shape[k] + i;
                        }
                        let rest = &a.shape[idxs.len()..];
                        if rest.is_empty() {
                            Got::C(a.data.get(off as usize))
                        } else {
                            let row: usize = rest.iter().product::<i64>() as usize;
                            Got::A(ArrayVal::new(
                                rest.to_vec(),
                                a.data.slice(off as usize * row, row),
                            ))
                        }
                    };
                    match got {
                        Got::C(c) => write_const(fr, *dst, c)?,
                        Got::A(av) => self.write_value(fr, *dst, Value::Array(av))?,
                    }
                }
                Instr::Iota { n, dst } => {
                    let n = self.read_op(fr, *n);
                    if n < 0 {
                        return err("iota of negative length");
                    }
                    let av = ArrayVal::new(vec![n], Buffer::I64((0..n).collect()));
                    fr.arrs[*dst as usize] = Some(Arc::new(av));
                }
                Instr::RepScalar { n, elem, dst } => {
                    let n = self.read_op(fr, *n);
                    if n < 0 {
                        return err("replicate of negative length");
                    }
                    let c = read_const(fr, *elem)?;
                    let mut data = Buffer::with_capacity(c.scalar_type(), n as usize);
                    for _ in 0..n {
                        data.push(c);
                    }
                    fr.arrs[*dst as usize] = Some(Arc::new(ArrayVal::new(vec![n], data)));
                }
                Instr::RepArr { n, elem, dst } => {
                    let n = self.read_op(fr, *n);
                    if n < 0 {
                        return err("replicate of negative length");
                    }
                    let a = self.arr(fr, *elem)?.clone();
                    let mut data =
                        Buffer::with_capacity(a.data.scalar_type(), n as usize * a.data.len());
                    for _ in 0..n {
                        data.extend_range(&a.data, 0, a.data.len());
                    }
                    let mut shape = vec![n];
                    shape.extend(&a.shape);
                    fr.arrs[*dst as usize] = Some(Arc::new(ArrayVal::new(shape, data)));
                }
                Instr::Rearrange { perm, arr, dst } => {
                    let a = self.arr(fr, *arr)?.clone();
                    fr.arrs[*dst as usize] = Some(Arc::new(a.rearrange(perm)));
                }
                Instr::ArrayLit { elems, st, dst } => {
                    let mut buf = Buffer::with_capacity(*st, elems.len());
                    for &e in elems.iter() {
                        buf.push(read_const(fr, e)?);
                    }
                    let av = ArrayVal::new(vec![elems.len() as i64], buf);
                    fr.arrs[*dst as usize] = Some(Arc::new(av));
                }
                Instr::If { cond, tf, ff } => {
                    if fr.ints[*cond as usize] != 0 {
                        self.run_func(fr, *tf)?;
                    } else {
                        self.run_func(fr, *ff)?;
                    }
                }
                Instr::Loop { ivar, bound, body } => {
                    let n = self.read_op(fr, *bound);
                    for i in 0..n {
                        fr.ints[*ivar as usize] = i;
                        self.run_func(fr, *body)?;
                    }
                }
                Instr::Soac(id) => self.run_soac(fr, *id)?,
                Instr::Seg(id) => self.run_seg(fr, *id)?,
            }
        }
        Ok(())
    }

    // -- SOACs (sequential, as in the interpreter) --------------------

    fn run_soac(&self, fr: &mut VmFrame, id: u32) -> Result<()> {
        let so = &self.prog.soacs[id as usize];
        let n = self.read_op(fr, so.w);
        let mut inputs = Vec::with_capacity(so.arrs.len());
        for (&r, name) in so.arrs.iter().zip(&so.arr_names) {
            let a = self.arr(fr, r)?.clone();
            if a.shape[0] != n {
                return err(format!(
                    "SOAC width {n} but array {name} has outer size {}",
                    a.shape[0]
                ));
            }
            inputs.push(a);
        }
        match so.kind {
            SoacKind::Map => {
                let mut out: Option<Vec<VAcc>> = None;
                for i in 0..n {
                    self.bind_elems(fr, so, &inputs, i)?;
                    self.run_func(fr, so.step)?;
                    self.accumulate_locs(fr, &mut out, &so.outs)?;
                }
                self.finish_soac(fr, so, out, n)
            }
            SoacKind::Reduce | SoacKind::Redomap => {
                self.copy_locs(fr, &so.nes, &so.accs)?;
                for i in 0..n {
                    self.bind_elems(fr, so, &inputs, i)?;
                    self.run_func(fr, so.step)?;
                }
                self.copy_locs(fr, &so.accs, &so.dsts)
            }
            SoacKind::Scan | SoacKind::Scanomap => {
                self.copy_locs(fr, &so.nes, &so.accs)?;
                let mut out: Option<Vec<VAcc>> = None;
                for i in 0..n {
                    self.bind_elems(fr, so, &inputs, i)?;
                    self.run_func(fr, so.step)?;
                    self.accumulate_locs(fr, &mut out, &so.outs)?;
                }
                self.finish_soac(fr, so, out, n)
            }
        }
    }

    fn bind_elems(
        &self,
        fr: &mut VmFrame,
        so: &CompiledSoac,
        inputs: &[Arc<ArrayVal>],
        i: i64,
    ) -> Result<()> {
        for (a, &dst) in inputs.iter().zip(&so.elems) {
            self.bind_row(fr, a, i, dst)?;
        }
        Ok(())
    }

    fn finish_soac(
        &self,
        fr: &mut VmFrame,
        so: &CompiledSoac,
        out: Option<Vec<VAcc>>,
        n: i64,
    ) -> Result<()> {
        match out {
            Some(accs) => {
                for (acc, &d) in accs.into_iter().zip(&so.dsts) {
                    self.write_value(fr, d, acc.finish_shaped(&[n]))?;
                }
            }
            None => {
                for (t, &d) in so.ret.iter().zip(&so.dsts) {
                    let mut shape = vec![0i64];
                    shape.extend(std::iter::repeat_n(0, t.rank()));
                    let av = ArrayVal::new(shape, Buffer::with_capacity(t.scalar, 0));
                    self.write_value(fr, d, Value::Array(av))?;
                }
            }
        }
        Ok(())
    }

    /// Bind one outer element of `a` (scalar for rank 1, row view
    /// otherwise) into `dst`.
    fn bind_row(&self, fr: &mut VmFrame, a: &ArrayVal, i: i64, dst: Loc) -> Result<()> {
        if a.rank() == 1 {
            let i = i as usize;
            match (&a.data, dst) {
                (Buffer::I64(v), Loc::Int { r, st: ScalarType::I64 }) => {
                    fr.ints[r as usize] = v[i]
                }
                (Buffer::I32(v), Loc::Int { r, st: ScalarType::I32 }) => {
                    fr.ints[r as usize] = v[i] as i64
                }
                (Buffer::Bool(v), Loc::Int { r, st: ScalarType::Bool }) => {
                    fr.ints[r as usize] = v[i] as i64
                }
                (Buffer::F64(v), Loc::Flt { r, st: ScalarType::F64 }) => {
                    fr.flts[r as usize] = v[i]
                }
                (Buffer::F32(v), Loc::Flt { r, st: ScalarType::F32 }) => {
                    fr.flts[r as usize] = v[i] as f64
                }
                _ => return write_const(fr, dst, a.data.get(i)),
            }
            Ok(())
        } else {
            let Loc::Arr { r } = dst else {
                return err("value type mismatch: array row into scalar register");
            };
            let row: usize = a.shape[1..].iter().product::<i64>() as usize;
            let av = ArrayVal::new(a.shape[1..].to_vec(), a.data.slice(i as usize * row, row));
            fr.arrs[r as usize] = Some(Arc::new(av));
            Ok(())
        }
    }

    // -- segmented operators ------------------------------------------

    /// Bind the element parameters of the first `ndims` context
    /// dimensions for the point `idxs`, outermost first.
    fn bind_ctx(
        &self,
        fr: &mut VmFrame,
        sg: &CompiledSeg,
        widths: &[i64],
        idxs: &[i64],
        ndims: usize,
    ) -> Result<()> {
        for (k, dim) in sg.ctx.iter().take(ndims).enumerate() {
            for b in &dim.binds {
                let a = self.arr(fr, b.arr)?.clone();
                if a.shape[0] != widths[k] {
                    return err(format!(
                        "segop context dim {k}: width {} but array {} outer size {}",
                        widths[k], b.name, a.shape[0]
                    ));
                }
                self.bind_row(fr, &a, idxs[k], b.dst)?;
            }
        }
        Ok(())
    }

    /// Bind the outer (non-innermost) context dimensions for a segment.
    fn bind_segment(
        &self,
        fr: &mut VmFrame,
        sg: &CompiledSeg,
        widths: &[i64],
        seg: i64,
    ) -> Result<()> {
        let p = widths.len();
        let mut idxs = vec![0i64; p];
        let mut rem = seg;
        for k in (0..p - 1).rev() {
            idxs[k] = rem % widths[k];
            rem /= widths[k];
        }
        self.bind_ctx(fr, sg, widths, &idxs, p - 1)
    }

    /// Prefetch one context dimension's binds for a task: the source
    /// arrays (`Arc`s held once, not cloned per element) with the width
    /// check done up front — the same check, against the same width and
    /// with the same message, the per-element path would repeat.
    fn dim_plan(&self, fr: &VmFrame, dim: &CDim, k: usize, w: i64) -> Result<DimPlan> {
        let mut binds = Vec::with_capacity(dim.binds.len());
        for b in &dim.binds {
            let a = self.arr(fr, b.arr)?.clone();
            if a.shape[0] != w {
                return err(format!(
                    "segop context dim {k}: width {w} but array {} outer size {}",
                    b.name, a.shape[0]
                ));
            }
            binds.push((a, b.dst));
        }
        Ok(DimPlan { binds })
    }

    /// As [`Vm::dim_plan`] for the innermost dimension, with the fold
    /// loops' error message. Build it only when the loop is nonempty, so
    /// an empty block skips the check exactly as the per-element path
    /// (and `flat-exec`) would.
    fn inner_plan(&self, fr: &VmFrame, sg: &CompiledSeg, inner_w: i64) -> Result<DimPlan> {
        let dim = sg
            .ctx
            .last()
            .ok_or_else(|| ExecError("segop with empty context".into()))?;
        let mut binds = Vec::with_capacity(dim.binds.len());
        for b in &dim.binds {
            let a = self.arr(fr, b.arr)?.clone();
            if a.shape[0] != inner_w {
                return err(format!(
                    "segop innermost dim: width {inner_w} but array {} outer size {}",
                    b.name, a.shape[0]
                ));
            }
            binds.push((a, b.dst));
        }
        Ok(DimPlan { binds })
    }

    /// Bind element `i` of every array in a prefetched dimension plan.
    fn bind_dim(&self, fr: &mut VmFrame, plan: &DimPlan, i: i64) -> Result<()> {
        for (a, dst) in &plan.binds {
            self.bind_row(fr, a, i, *dst)?;
        }
        Ok(())
    }

    fn run_seg(&self, fr: &mut VmFrame, id: u32) -> Result<()> {
        let sg = &self.prog.segs[id as usize];
        let widths: Vec<i64> = sg.ctx.iter().map(|d| self.read_op(fr, d.width)).collect();
        let inner_w = *widths
            .last()
            .ok_or_else(|| ExecError("segop with empty context".into()))?;
        if widths.iter().any(|&w| w < 0) {
            return err(format!("segop with negative width in {widths:?}"));
        }
        let total: i64 = widths.iter().product();
        let segments: i64 = widths[..widths.len() - 1].iter().product();
        let out_shape: Vec<i64> = match sg.kind {
            CSegKind::Red { .. } => widths[..widths.len() - 1].to_vec(),
            _ => widths.clone(),
        };

        let kind_name = sg.kind.name();
        let record = !fr.in_kernel;
        let path_sig = gpu_sim::path_signature(&fr.path);
        let start_nanos = self.t0.elapsed().as_nanos() as f64;
        let _span = if record {
            Some(flat_obs::span("vm", kind_name))
        } else {
            None
        };
        let telem_on = record && self.telem;
        let tag = if telem_on { workpool::fresh_tag() } else { 0 };
        self.cur_tag.store(tag, Ordering::Relaxed);
        let pool_before = telem_on.then(|| self.pool.telemetry());
        let pool_start_ns = if telem_on { self.pool.now_ns() } else { 0 };
        let started = Instant::now();

        let (out, tasks) = match &sg.kind {
            CSegKind::Map { body, outs } => {
                self.seg_map(fr, sg, *body, outs, &widths, total)?
            }
            CSegKind::Red { fold, combine, nes, accs, rhs } => self.seg_red(
                fr, sg, *fold, *combine, nes, accs, rhs, &widths, segments, inner_w,
            )?,
            CSegKind::Scan { fold, combine, nes, accs, rhs } => self.seg_scan(
                fr, sg, *fold, *combine, nes, accs, rhs, &widths, segments, inner_w, total,
            )?,
        };

        if record {
            flat_obs::counter("vm.launches").inc();
            let telem = pool_before.map(|before| KernelTelem {
                pool: self.pool.telemetry().delta_since(&before),
                task_sizes: flat_exec::task_size_histogram(
                    matches!(sg.kind, CSegKind::Map { .. }),
                    total,
                    segments,
                    inner_w,
                    self.grain,
                ),
            });
            fr.launches.push(ExecLaunch {
                name: sg.name.clone(),
                kind: kind_name,
                level: sg.level,
                space: total.max(0) as f64,
                tasks: tasks as u64,
                nanos: started.elapsed().as_nanos() as f64,
                start_nanos,
                prov: sg.prov,
                path: path_sig,
                widths: widths.clone(),
                tag,
                pool_start_ns,
                telem,
            });
        }

        match out {
            None => {
                for (t, &d) in sg.body_ret.iter().zip(&sg.dsts) {
                    let mut shape = out_shape.clone();
                    shape.extend(std::iter::repeat_n(0, t.rank()));
                    let av = ArrayVal::new(shape, Buffer::with_capacity(t.scalar, 0));
                    self.write_value(fr, d, Value::Array(av))?;
                }
            }
            Some(accs) => {
                for (acc, &d) in accs.into_iter().zip(&sg.dsts) {
                    self.write_value(fr, d, acc.finish_shaped(&out_shape))?;
                }
            }
        }
        Ok(())
    }

    fn seg_map(
        &self,
        fr: &mut VmFrame,
        sg: &CompiledSeg,
        body: FuncId,
        outs: &[Loc],
        widths: &[i64],
        total: i64,
    ) -> Result<(Option<Vec<VAcc>>, usize)> {
        if total <= 0 {
            return Ok((None, 0));
        }
        let total = total as usize;
        let grain = self.grain;
        let n_chunks = total.div_ceil(grain);
        let slots: Vec<TaskSlot<Vec<VAcc>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let host: &VmFrame = fr;
        let tag = self.cur_tag.load(Ordering::Relaxed);
        self.pool.run_tagged(n_chunks, tag, &|c| {
            let lo = c * grain;
            let hi = ((c + 1) * grain).min(total);
            let mut sub = self.task_frame(host);
            let r = self.map_range(&mut sub, sg, body, outs, widths, lo, hi);
            *slots[c].lock().unwrap() = Some(r.map(|accs| (accs, sub.path)));
        });
        let mut out: Option<Vec<VAcc>> = None;
        for slot in slots {
            let (accs, path) = take_slot(slot)?;
            fr.path.extend(path);
            merge_vaccs(&mut out, accs)?;
        }
        Ok((out, n_chunks))
    }

    #[allow(clippy::too_many_arguments)]
    fn map_range(
        &self,
        fr: &mut VmFrame,
        sg: &CompiledSeg,
        body: FuncId,
        outs: &[Loc],
        widths: &[i64],
        lo: usize,
        hi: usize,
    ) -> Result<Vec<VAcc>> {
        let p = widths.len();
        // Re-bind a dimension only when its coordinate moved — and then
        // every dimension inside it too, because dim k's source arrays
        // can be the row views dim k-1 just bound. A dim's prefetched
        // plan is valid exactly as long as every outer dim is unchanged.
        // Consecutive flat indices share their outer coordinates, so the
        // expensive outer row copies happen once per row, not once per
        // element; register contents at body entry are identical.
        let mut plans: Vec<Option<DimPlan>> = (0..p).map(|_| None).collect();
        let mut idxs = vec![0i64; p];
        let mut prev = vec![-1i64; p];
        let mut out: Option<Vec<VAcc>> = None;
        for flat in lo..hi {
            let mut rem = flat as i64;
            for k in (0..p).rev() {
                idxs[k] = rem % widths[k];
                rem /= widths[k];
            }
            let k0 = (0..p).find(|&k| idxs[k] != prev[k]).unwrap_or(p);
            for k in k0..p {
                if k > k0 {
                    plans[k] = None;
                }
                let plan = match &plans[k] {
                    Some(pl) => pl,
                    None => {
                        plans[k] = Some(self.dim_plan(fr, &sg.ctx[k], k, widths[k])?);
                        plans[k].as_ref().expect("plan just built")
                    }
                };
                self.bind_dim(fr, plan, idxs[k])?;
                prev[k] = idxs[k];
            }
            self.run_func(fr, body)?;
            self.accumulate_locs(fr, &mut out, outs)?;
        }
        out.ok_or_else(|| ExecError("empty segmap chunk".into()))
    }

    #[allow(clippy::too_many_arguments)]
    fn seg_red(
        &self,
        fr: &mut VmFrame,
        sg: &CompiledSeg,
        fold: FuncId,
        combine: FuncId,
        nes: &[Loc],
        accs: &[Loc],
        rhs: &[Loc],
        widths: &[i64],
        segments: i64,
        inner_w: i64,
    ) -> Result<(Option<Vec<VAcc>>, usize)> {
        if segments <= 0 {
            return Ok((None, 0));
        }
        let segments = segments as usize;
        let grain = self.grain as i64;
        let blocks = (((inner_w + grain - 1) / grain).max(1)) as usize;
        let tasks = segments * blocks;
        let slots: Vec<TaskSlot<Vec<TVal>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let host: &VmFrame = fr;
        let tag = self.cur_tag.load(Ordering::Relaxed);
        self.pool.run_tagged(tasks, tag, &|t| {
            let seg = (t / blocks) as i64;
            let b = (t % blocks) as i64;
            let mut sub = self.task_frame(host);
            let r = (|| {
                self.bind_segment(&mut sub, sg, widths, seg)?;
                // Neutral elements read after the segment context is
                // bound, as in flat-exec (they may reference it).
                self.copy_locs(&mut sub, nes, accs)?;
                let (jlo, jhi) = (b * grain, (b * grain + grain).min(inner_w));
                if jlo < jhi {
                    let plan = self.inner_plan(&sub, sg, inner_w)?;
                    for j in jlo..jhi {
                        self.bind_dim(&mut sub, &plan, j)?;
                        self.run_func(&mut sub, fold)?;
                    }
                }
                self.read_tvals(&sub, accs)
            })();
            *slots[t].lock().unwrap() = Some(r.map(|acc| (acc, sub.path)));
        });
        let mut partials: Vec<Vec<TVal>> = Vec::with_capacity(tasks);
        for slot in slots {
            let (acc, path) = take_slot(slot)?;
            fr.path.extend(path);
            partials.push(acc);
        }
        // Combine block partials left-to-right within each segment, in
        // the segment's context. Runs on the host frame in kernel mode:
        // every register it writes is dead afterwards (no reuse), and
        // its threshold records land in fr.path in flat-exec's order.
        let saved = fr.in_kernel;
        fr.in_kernel = true;
        let res = (|| {
            let mut out: Option<Vec<VAcc>> = None;
            let mut partials = partials.into_iter();
            for seg in 0..segments {
                self.bind_segment(fr, sg, widths, seg as i64)?;
                let mut acc = partials
                    .next()
                    .ok_or_else(|| ExecError("one partial per block missing".into()))?;
                for _ in 1..blocks {
                    let nxt = partials
                        .next()
                        .ok_or_else(|| ExecError("one partial per block missing".into()))?;
                    self.write_tvals(fr, accs, &acc)?;
                    self.write_tvals(fr, rhs, &nxt)?;
                    self.run_func(fr, combine)?;
                    acc = self.read_tvals(fr, accs)?;
                }
                accumulate_tvals(&mut out, &acc)?;
            }
            Ok((out, tasks))
        })();
        fr.in_kernel = saved;
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn seg_scan(
        &self,
        fr: &mut VmFrame,
        sg: &CompiledSeg,
        fold: FuncId,
        combine: FuncId,
        nes: &[Loc],
        accs: &[Loc],
        rhs: &[Loc],
        widths: &[i64],
        segments: i64,
        inner_w: i64,
        total: i64,
    ) -> Result<(Option<Vec<VAcc>>, usize)> {
        if total <= 0 {
            return Ok((None, 0));
        }
        let segments = segments as usize;
        let grain = self.grain as i64;
        let blocks = ((inner_w + grain - 1) / grain) as usize;
        let tasks = segments * blocks;

        // Pass 1: per-block local scans, recording the scanned elements
        // and the running total.
        type Scanned = (Vec<VAcc>, Vec<TVal>);
        let slots: Vec<TaskSlot<Scanned>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let host: &VmFrame = fr;
        let tag = self.cur_tag.load(Ordering::Relaxed);
        self.pool.run_tagged(tasks, tag, &|t| {
            let seg = (t / blocks) as i64;
            let b = (t % blocks) as i64;
            let mut sub = self.task_frame(host);
            let r = (|| {
                self.bind_segment(&mut sub, sg, widths, seg)?;
                self.copy_locs(&mut sub, nes, accs)?;
                let mut local: Option<Vec<VAcc>> = None;
                let (jlo, jhi) = (b * grain, (b * grain + grain).min(inner_w));
                if jlo < jhi {
                    let plan = self.inner_plan(&sub, sg, inner_w)?;
                    for j in jlo..jhi {
                        self.bind_dim(&mut sub, &plan, j)?;
                        self.run_func(&mut sub, fold)?;
                        self.accumulate_locs(&sub, &mut local, accs)?;
                    }
                }
                let local = local.ok_or_else(|| ExecError("empty segscan block".into()))?;
                let acc = self.read_tvals(&sub, accs)?;
                Ok((local, acc))
            })();
            *slots[t].lock().unwrap() = Some(r.map(|s| (s, sub.path)));
        });
        let mut pass1: Vec<Scanned> = Vec::with_capacity(tasks);
        for slot in slots {
            let (s, path) = take_slot(slot)?;
            fr.path.extend(path);
            pass1.push(s);
        }

        // Pass 2: sequential prefix over block totals per segment, on
        // the host frame in kernel mode (registers dead afterwards).
        let mut prefixes: Vec<Option<Vec<TVal>>> = vec![None; tasks];
        if blocks > 1 {
            let saved = fr.in_kernel;
            fr.in_kernel = true;
            let res: Result<()> = (|| {
                for seg in 0..segments {
                    self.bind_segment(fr, sg, widths, seg as i64)?;
                    let mut running: Vec<TVal> = pass1[seg * blocks].1.clone();
                    for b in 1..blocks {
                        prefixes[seg * blocks + b] = Some(running.clone());
                        if b + 1 < blocks {
                            self.write_tvals(fr, accs, &running)?;
                            self.write_tvals(fr, rhs, &pass1[seg * blocks + b].1)?;
                            self.run_func(fr, combine)?;
                            running = self.read_tvals(fr, accs)?;
                        }
                    }
                }
                Ok(())
            })();
            fr.in_kernel = saved;
            res?;
        }

        // Pass 3: parallel fixup — combine the prefix into every element
        // of the later blocks.
        let fixed: Vec<TaskSlot<Vec<VAcc>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let pass1_ref = &pass1;
        let prefixes_ref = &prefixes;
        let host: &VmFrame = fr;
        self.pool.run_tagged(tasks, tag, &|t| {
            let seg = (t / blocks) as i64;
            let mut sub = self.task_frame(host);
            let r = (|| {
                let (locals, _) = &pass1_ref[t];
                match &prefixes_ref[t] {
                    None => Ok(locals.iter().map(VAcc::clone).collect()),
                    Some(prefix) => {
                        self.bind_segment(&mut sub, sg, widths, seg)?;
                        let count = locals.first().map(|a| a.count).unwrap_or(0);
                        let mut out: Option<Vec<VAcc>> = None;
                        for i in 0..count {
                            self.write_tvals(&mut sub, accs, prefix)?;
                            for (local, &rl) in locals.iter().zip(rhs) {
                                self.write_value(&mut sub, rl, local.elem_at(i))?;
                            }
                            self.run_func(&mut sub, combine)?;
                            self.accumulate_locs(&sub, &mut out, accs)?;
                        }
                        out.ok_or_else(|| ExecError("empty segscan fixup".into()))
                    }
                }
            })();
            *fixed[t].lock().unwrap() = Some(r.map(|accs| (accs, sub.path)));
        });
        let mut out: Option<Vec<VAcc>> = None;
        for slot in fixed {
            let (accs, path) = take_slot(slot)?;
            fr.path.extend(path);
            merge_vaccs(&mut out, accs)?;
        }
        Ok((out, tasks))
    }

    /// Append one point's results (read straight from their registers)
    /// onto the accumulators — `flat-exec`'s `accumulate` without the
    /// intermediate `Value`s.
    fn accumulate_locs(
        &self,
        fr: &VmFrame,
        out: &mut Option<Vec<VAcc>>,
        locs: &[Loc],
    ) -> Result<()> {
        match out {
            None => {
                let mut accs = Vec::with_capacity(locs.len());
                for &l in locs {
                    accs.push(match l {
                        Loc::Arr { r } => {
                            let a = self.arr(fr, r)?;
                            let mut data =
                                Buffer::with_capacity(a.data.scalar_type(), a.data.len());
                            data.extend_range(&a.data, 0, a.data.len());
                            VAcc { elem_shape: a.shape.clone(), data, count: 1 }
                        }
                        _ => {
                            let c = read_const(fr, l)?;
                            let mut data = Buffer::with_capacity(c.scalar_type(), 16);
                            data.push(c);
                            VAcc { elem_shape: vec![], data, count: 1 }
                        }
                    });
                }
                *out = Some(accs);
                Ok(())
            }
            Some(accs) => {
                if accs.len() != locs.len() {
                    return err("result arity changed across iterations");
                }
                for (acc, &l) in accs.iter_mut().zip(locs) {
                    match l {
                        Loc::Arr { r } => {
                            let a = self.arr(fr, r)?;
                            if a.shape != acc.elem_shape {
                                return err(format!(
                                    "irregular parallelism: element shape {:?} vs {:?}",
                                    a.shape, acc.elem_shape
                                ));
                            }
                            acc.data.extend_range(&a.data, 0, a.data.len());
                        }
                        // Monomorphic pushes for the hot scalar cases;
                        // the fallback reconstructs a Const.
                        Loc::Int { r, st: ScalarType::I64 } => {
                            let Buffer::I64(v) = &mut acc.data else {
                                return err("result type changed across iterations");
                            };
                            v.push(fr.ints[r as usize]);
                        }
                        Loc::Flt { r, st: ScalarType::F64 } => {
                            let Buffer::F64(v) = &mut acc.data else {
                                return err("result type changed across iterations");
                            };
                            v.push(fr.flts[r as usize]);
                        }
                        Loc::Flt { r, st: ScalarType::F32 } => {
                            let Buffer::F32(v) = &mut acc.data else {
                                return err("result type changed across iterations");
                            };
                            v.push(fr.flts[r as usize] as f32);
                        }
                        _ => acc.data.push(read_const(fr, l)?),
                    }
                    acc.count += 1;
                }
                Ok(())
            }
        }
    }
}

/// The VM's clone of `flat-exec`'s `ResultAcc`: per-result flat buffers
/// plus the element shape and count.
#[derive(Clone)]
pub(crate) struct VAcc {
    elem_shape: Vec<i64>,
    data: Buffer,
    count: usize,
}

impl VAcc {
    fn finish_shaped(self, outer: &[i64]) -> Value {
        if outer.is_empty() && self.elem_shape.is_empty() {
            return Value::Scalar(self.data.get(0));
        }
        let mut shape = outer.to_vec();
        shape.extend(&self.elem_shape);
        Value::Array(ArrayVal::new(shape, self.data))
    }

    fn elem_at(&self, i: usize) -> Value {
        if self.elem_shape.is_empty() {
            Value::Scalar(self.data.get(i))
        } else {
            let len = self.elem_shape.iter().product::<i64>() as usize;
            Value::Array(ArrayVal::new(self.elem_shape.clone(), self.data.slice(i * len, len)))
        }
    }
}

fn accumulate_tvals(out: &mut Option<Vec<VAcc>>, vals: &[TVal]) -> Result<()> {
    match out {
        None => {
            *out = Some(
                vals.iter()
                    .map(|v| match v {
                        TVal::S(c) => {
                            let mut data = Buffer::with_capacity(c.scalar_type(), 16);
                            data.push(*c);
                            VAcc { elem_shape: vec![], data, count: 1 }
                        }
                        TVal::A(a) => {
                            let mut data =
                                Buffer::with_capacity(a.data.scalar_type(), a.data.len());
                            data.extend_range(&a.data, 0, a.data.len());
                            VAcc { elem_shape: a.shape.clone(), data, count: 1 }
                        }
                    })
                    .collect(),
            );
            Ok(())
        }
        Some(accs) => {
            if accs.len() != vals.len() {
                return err("result arity changed across iterations");
            }
            for (acc, v) in accs.iter_mut().zip(vals) {
                match v {
                    TVal::S(c) => {
                        acc.data.push(*c);
                        acc.count += 1;
                    }
                    TVal::A(a) => {
                        if a.shape != acc.elem_shape {
                            return err(format!(
                                "irregular parallelism: element shape {:?} vs {:?}",
                                a.shape, acc.elem_shape
                            ));
                        }
                        acc.data.extend_range(&a.data, 0, a.data.len());
                        acc.count += 1;
                    }
                }
            }
            Ok(())
        }
    }
}

fn merge_vaccs(out: &mut Option<Vec<VAcc>>, accs: Vec<VAcc>) -> Result<()> {
    match out {
        None => {
            *out = Some(accs);
            Ok(())
        }
        Some(cur) => {
            if cur.len() != accs.len() {
                return err("result arity changed across chunks");
            }
            for (c, a) in cur.iter_mut().zip(accs) {
                if a.elem_shape != c.elem_shape {
                    return err(format!(
                        "irregular parallelism: element shape {:?} vs {:?}",
                        a.elem_shape, c.elem_shape
                    ));
                }
                c.data.extend_range(&a.data, 0, a.data.len());
                c.count += a.count;
            }
            Ok(())
        }
    }
}
