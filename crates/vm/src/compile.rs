//! Lowering from flattened `flat-ir` to the register bytecode.
//!
//! The pass is a single walk over the program body. Every `VName` is
//! resolved here, once, to a [`Loc`]; the runtime never sees a name.
//! Scalar statements become one instruction; `if`/`loop` bodies and
//! segop/SOAC bodies become separate functions referenced by structured
//! instructions; segops and SOACs additionally get side-table entries
//! carrying their compiled context bindings and operator functions.
//!
//! Type errors (non-bool conditions, array/scalar confusion, non-integral
//! widths) surface at compile time here rather than at evaluation time
//! as in `flat-exec`; data-dependent errors (division by zero, negative
//! widths, out-of-bounds indices) remain runtime errors so the VM agrees
//! with the interpreter on every well-typed program.

use crate::bytecode::*;
use flat_exec::ExecError;
use flat_ir::ast::*;
use flat_ir::types::{Param, ScalarType, Type};
use flat_ir::VName;
use std::collections::HashMap;

type Result<T> = std::result::Result<T, ExecError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(ExecError(msg.into()))
}

/// Lower a program to bytecode.
pub fn compile(prog: &Program) -> Result<CompiledProgram> {
    let mut c = Compiler::default();
    let main = c.new_func();
    let mut params = Vec::new();
    for p in &prog.params {
        let l = c.loc_for_type(&p.ty);
        c.env.insert(p.name, l);
        params.push((l, p.ty.clone(), p.name.to_string()));
    }
    let results = c.compile_body(main, &prog.body)?;
    Ok(CompiledProgram {
        name: prog.name.clone(),
        params,
        results,
        main,
        funcs: c.funcs,
        segs: c.segs,
        soacs: c.soacs,
        n_int: c.n_int,
        n_flt: c.n_flt,
        n_arr: c.n_arr,
    })
}

#[derive(Default)]
struct Compiler {
    env: HashMap<VName, Loc>,
    n_int: u32,
    n_flt: u32,
    n_arr: u32,
    funcs: Vec<Vec<Instr>>,
    segs: Vec<CompiledSeg>,
    soacs: Vec<CompiledSoac>,
}

impl Compiler {
    fn new_func(&mut self) -> FuncId {
        self.funcs.push(Vec::new());
        (self.funcs.len() - 1) as FuncId
    }

    fn emit(&mut self, f: FuncId, ins: Instr) {
        self.funcs[f as usize].push(ins);
    }

    // -- register allocation (never reused) ---------------------------

    fn int_loc(&mut self, st: ScalarType) -> Loc {
        let r = self.n_int;
        self.n_int += 1;
        Loc::Int { r, st }
    }

    fn flt_loc(&mut self, st: ScalarType) -> Loc {
        let r = self.n_flt;
        self.n_flt += 1;
        Loc::Flt { r, st }
    }

    fn arr_loc(&mut self) -> Loc {
        let r = self.n_arr;
        self.n_arr += 1;
        Loc::Arr { r }
    }

    fn loc_for_type(&mut self, ty: &Type) -> Loc {
        if ty.rank() > 0 {
            self.arr_loc()
        } else {
            match ty.scalar {
                ScalarType::F32 | ScalarType::F64 => self.flt_loc(ty.scalar),
                st => self.int_loc(st),
            }
        }
    }

    /// A fresh register in the same bank (and of the same encoded type)
    /// as `l` — scratch for two-phase parallel moves.
    fn scratch_like(&mut self, l: Loc) -> Loc {
        match l {
            Loc::Int { st, .. } => self.int_loc(st),
            Loc::Flt { st, .. } => self.flt_loc(st),
            Loc::Arr { .. } => self.arr_loc(),
        }
    }

    // -- operand resolution -------------------------------------------

    /// Materialize a constant into a fresh register.
    fn const_loc(&mut self, f: FuncId, c: Const) -> Loc {
        match c {
            Const::I64(v) => {
                let l = self.int_loc(ScalarType::I64);
                let Loc::Int { r, .. } = l else { unreachable!() };
                self.emit(f, Instr::IConst { dst: r, v });
                l
            }
            Const::I32(v) => {
                let l = self.int_loc(ScalarType::I32);
                let Loc::Int { r, .. } = l else { unreachable!() };
                self.emit(f, Instr::IConst { dst: r, v: v as i64 });
                l
            }
            Const::Bool(b) => {
                let l = self.int_loc(ScalarType::Bool);
                let Loc::Int { r, .. } = l else { unreachable!() };
                self.emit(f, Instr::IConst { dst: r, v: b as i64 });
                l
            }
            Const::F64(v) => {
                let l = self.flt_loc(ScalarType::F64);
                let Loc::Flt { r, .. } = l else { unreachable!() };
                self.emit(f, Instr::FConst { dst: r, v });
                l
            }
            Const::F32(v) => {
                let l = self.flt_loc(ScalarType::F32);
                let Loc::Flt { r, .. } = l else { unreachable!() };
                self.emit(f, Instr::FConst { dst: r, v: v as f64 });
                l
            }
        }
    }

    fn lookup(&self, v: VName) -> Result<Loc> {
        self.env.get(&v).copied().ok_or_else(|| ExecError(format!("variable {v} unbound")))
    }

    fn loc_of_subexp(&mut self, f: FuncId, se: &SubExp) -> Result<Loc> {
        match se {
            SubExp::Const(c) => Ok(self.const_loc(f, *c)),
            SubExp::Var(v) => self.lookup(*v),
        }
    }

    /// An `i64`-valued driver operand (width, bound, index, factor).
    fn op_of_subexp(&mut self, se: &SubExp) -> Result<Operand> {
        match se {
            SubExp::Const(c) => c
                .as_i64()
                .map(Operand::Const)
                .ok_or_else(|| ExecError("expected integral scalar".into())),
            SubExp::Var(v) => match self.lookup(*v)? {
                Loc::Int { r, st: ScalarType::I64 | ScalarType::I32 } => Ok(Operand::Reg(r)),
                Loc::Int { .. } | Loc::Flt { .. } => err("expected integral scalar"),
                Loc::Arr { .. } => err(format!("expected scalar, {v} is an array")),
            },
        }
    }

    fn arr_reg(&self, v: VName) -> Result<(u32, String)> {
        match self.lookup(v)? {
            Loc::Arr { r } => Ok((r, v.to_string())),
            _ => err(format!("expected array, {v} is a scalar")),
        }
    }

    // -- moves ---------------------------------------------------------

    fn mov(&mut self, f: FuncId, src: Loc, dst: Loc) -> Result<()> {
        match (src, dst) {
            (Loc::Int { r: s, .. }, Loc::Int { r: d, .. }) => {
                self.emit(f, Instr::IMov { dst: d, src: s })
            }
            (Loc::Flt { r: s, .. }, Loc::Flt { r: d, .. }) => {
                self.emit(f, Instr::FMov { dst: d, src: s })
            }
            (Loc::Arr { r: s }, Loc::Arr { r: d }) => {
                self.emit(f, Instr::AMov { dst: d, src: s })
            }
            _ => return err("value kind mismatch in binding"),
        }
        Ok(())
    }

    fn movs(&mut self, f: FuncId, srcs: &[Loc], dsts: &[Loc]) -> Result<()> {
        for (&s, &d) in srcs.iter().zip(dsts) {
            self.mov(f, s, d)?;
        }
        Ok(())
    }

    /// A parallel move through scratch registers: the sources may
    /// mention the destinations (loop carries, accumulator updates).
    fn movs_parallel(&mut self, f: FuncId, srcs: &[Loc], dsts: &[Loc]) -> Result<()> {
        let scratch: Vec<Loc> = srcs.iter().map(|&s| self.scratch_like(s)).collect();
        self.movs(f, srcs, &scratch)?;
        self.movs(f, &scratch, dsts)
    }

    // -- bodies and statements ----------------------------------------

    fn compile_body(&mut self, f: FuncId, body: &Body) -> Result<Vec<Loc>> {
        for stm in &body.stms {
            self.compile_stm(f, stm)?;
        }
        body.result.iter().map(|r| self.loc_of_subexp(f, r)).collect()
    }

    fn bind_pat(&mut self, pat: &[Param]) -> Vec<Loc> {
        let locs: Vec<Loc> = pat.iter().map(|p| self.loc_for_type(&p.ty)).collect();
        for (p, &l) in pat.iter().zip(&locs) {
            self.env.insert(p.name, l);
        }
        locs
    }

    fn arity(&self, produced: usize, pat: &[Param]) -> Result<()> {
        if produced != pat.len() {
            return err(format!(
                "statement produced {produced} values for {} bindings",
                pat.len()
            ));
        }
        Ok(())
    }

    /// Lambda parameters: allocate and bind, returning the locations.
    fn lam_params(&mut self, params: &[Param]) -> Vec<Loc> {
        params
            .iter()
            .map(|p| {
                let l = self.loc_for_type(&p.ty);
                self.env.insert(p.name, l);
                l
            })
            .collect()
    }

    fn compile_stm(&mut self, f: FuncId, stm: &Stm) -> Result<()> {
        match &stm.exp {
            Exp::Seg(op) => return self.compile_seg(f, op, stm),
            Exp::Soac(so) => return self.compile_soac(f, so, &stm.pat),
            Exp::If { cond, tb, fb, .. } => {
                let cl = self.loc_of_subexp(f, cond)?;
                let Loc::Int { r: cr, st: ScalarType::Bool } = cl else {
                    return err("if condition is not bool");
                };
                let dsts = self.bind_pat(&stm.pat);
                let tf = self.new_func();
                let tres = self.compile_body(tf, tb)?;
                self.arity(tres.len(), &stm.pat)?;
                self.movs(tf, &tres, &dsts)?;
                let ff = self.new_func();
                let fres = self.compile_body(ff, fb)?;
                self.arity(fres.len(), &stm.pat)?;
                self.movs(ff, &fres, &dsts)?;
                self.emit(f, Instr::If { cond: cr, tf, ff });
                return Ok(());
            }
            Exp::Loop { params, ivar, bound, body } => {
                let bound = self.op_of_subexp(bound)?;
                let inits: Vec<Loc> = params
                    .iter()
                    .map(|(_, init)| self.loc_of_subexp(f, init))
                    .collect::<Result<_>>()?;
                let plocs = self.lam_params(
                    &params.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
                );
                self.movs(f, &inits, &plocs)?;
                let iv = self.int_loc(ScalarType::I64);
                let Loc::Int { r: ivr, .. } = iv else { unreachable!() };
                self.env.insert(*ivar, iv);
                let bf = self.new_func();
                let res = self.compile_body(bf, body)?;
                if res.len() != params.len() {
                    return err("loop body arity mismatch");
                }
                self.movs_parallel(bf, &res, &plocs)?;
                self.emit(f, Instr::Loop { ivar: ivr, bound, body: bf });
                self.arity(params.len(), &stm.pat)?;
                let dsts = self.bind_pat(&stm.pat);
                self.movs(f, &plocs, &dsts)?;
                return Ok(());
            }
            _ => {}
        }
        // Single-value expressions.
        self.arity(1, &stm.pat)?;
        let dst = self.loc_for_type(&stm.pat[0].ty);
        match &stm.exp {
            Exp::SubExp(se) => {
                let src = self.loc_of_subexp(f, se)?;
                self.mov(f, src, dst)?;
            }
            Exp::UnOp(op, a) => {
                let al = self.loc_of_subexp(f, a)?;
                self.compile_unop(f, *op, al, dst)?;
            }
            Exp::BinOp(op, a, b) => {
                let al = self.loc_of_subexp(f, a)?;
                let bl = self.loc_of_subexp(f, b)?;
                self.compile_binop(f, *op, al, bl, dst)?;
            }
            Exp::CmpThreshold { factors, threshold } => {
                let fs: Vec<Operand> =
                    factors.iter().map(|x| self.op_of_subexp(x)).collect::<Result<_>>()?;
                let Loc::Int { r, .. } = dst else {
                    return err("threshold comparison into non-bool binding");
                };
                self.emit(
                    f,
                    Instr::CmpThr { id: *threshold, factors: fs.into_boxed_slice(), dst: r },
                );
            }
            Exp::Index { arr, idxs } => {
                let (ar, _) = self.arr_reg(*arr)?;
                let is: Vec<Operand> =
                    idxs.iter().map(|i| self.op_of_subexp(i)).collect::<Result<_>>()?;
                self.emit(f, Instr::Index { arr: ar, idxs: is.into_boxed_slice(), dst });
            }
            Exp::Iota { n } => {
                let n = self.op_of_subexp(n)?;
                let Loc::Arr { r } = dst else { return err("iota into scalar binding") };
                self.emit(f, Instr::Iota { n, dst: r });
            }
            Exp::Replicate { n, elem } => {
                let n = self.op_of_subexp(n)?;
                let el = self.loc_of_subexp(f, elem)?;
                let Loc::Arr { r } = dst else { return err("replicate into scalar binding") };
                match el {
                    Loc::Arr { r: er } => self.emit(f, Instr::RepArr { n, elem: er, dst: r }),
                    _ => self.emit(f, Instr::RepScalar { n, elem: el, dst: r }),
                }
            }
            Exp::Rearrange { perm, arr } => {
                let (ar, _) = self.arr_reg(*arr)?;
                let Loc::Arr { r } = dst else { return err("rearrange into scalar binding") };
                self.emit(
                    f,
                    Instr::Rearrange { perm: perm.clone().into_boxed_slice(), arr: ar, dst: r },
                );
            }
            Exp::ArrayLit { elems, elem_ty } => {
                let els: Vec<Loc> =
                    elems.iter().map(|e| self.loc_of_subexp(f, e)).collect::<Result<_>>()?;
                let Loc::Arr { r } = dst else { return err("array literal into scalar binding") };
                self.emit(
                    f,
                    Instr::ArrayLit {
                        elems: els.into_boxed_slice(),
                        st: elem_ty.scalar,
                        dst: r,
                    },
                );
            }
            Exp::If { .. } | Exp::Loop { .. } | Exp::Soac(_) | Exp::Seg(_) => unreachable!(),
        }
        self.env.insert(stm.pat[0].name, dst);
        Ok(())
    }

    // -- scalar operator selection ------------------------------------

    fn compile_unop(&mut self, f: FuncId, op: UnOp, a: Loc, dst: Loc) -> Result<()> {
        match (op, a, dst) {
            (UnOp::Neg, Loc::Int { r: ar, st: ScalarType::I64 }, Loc::Int { r: d, .. }) => {
                self.emit(f, Instr::NegI64 { dst: d, a: ar })
            }
            (UnOp::Neg, Loc::Flt { r: ar, .. }, Loc::Flt { r: d, .. }) => {
                // Sign flip commutes with f32<->f64 widening, so one
                // opcode serves both float types.
                self.emit(f, Instr::NegF64 { dst: d, a: ar })
            }
            (UnOp::Not, Loc::Int { r: ar, st: ScalarType::Bool }, Loc::Int { r: d, .. }) => {
                self.emit(f, Instr::Not { dst: d, a: ar })
            }
            (_, Loc::Arr { .. }, _) => return err("unop on an array"),
            _ => self.emit(f, Instr::UnGen { op, a, dst }),
        }
        Ok(())
    }

    fn compile_binop(&mut self, f: FuncId, op: BinOp, a: Loc, b: Loc, dst: Loc) -> Result<()> {
        use BinOp::*;
        if matches!(a, Loc::Arr { .. }) || matches!(b, Loc::Arr { .. }) {
            return err("binop on an array");
        }
        let ins = match (a, b) {
            (
                Loc::Int { r: ar, st: ScalarType::I64 },
                Loc::Int { r: br, st: ScalarType::I64 },
            ) => {
                let d = match dst {
                    Loc::Int { r, .. } => r,
                    _ => return err("value type mismatch"),
                };
                match op {
                    Add => Some(Instr::AddI64 { dst: d, a: ar, b: br }),
                    Sub => Some(Instr::SubI64 { dst: d, a: ar, b: br }),
                    Mul => Some(Instr::MulI64 { dst: d, a: ar, b: br }),
                    Min => Some(Instr::MinI64 { dst: d, a: ar, b: br }),
                    Max => Some(Instr::MaxI64 { dst: d, a: ar, b: br }),
                    Eq => Some(Instr::EqI64 { dst: d, a: ar, b: br }),
                    Neq => Some(Instr::NeqI64 { dst: d, a: ar, b: br }),
                    Lt => Some(Instr::LtI64 { dst: d, a: ar, b: br }),
                    Le => Some(Instr::LeI64 { dst: d, a: ar, b: br }),
                    _ => None,
                }
            }
            (
                Loc::Flt { r: ar, st: ScalarType::F64 },
                Loc::Flt { r: br, st: ScalarType::F64 },
            ) => match (op, dst) {
                (Add, Loc::Flt { r: d, .. }) => Some(Instr::AddF64 { dst: d, a: ar, b: br }),
                (Sub, Loc::Flt { r: d, .. }) => Some(Instr::SubF64 { dst: d, a: ar, b: br }),
                (Mul, Loc::Flt { r: d, .. }) => Some(Instr::MulF64 { dst: d, a: ar, b: br }),
                (Div, Loc::Flt { r: d, .. }) => Some(Instr::DivF64 { dst: d, a: ar, b: br }),
                (Min, Loc::Flt { r: d, .. }) => Some(Instr::MinF64 { dst: d, a: ar, b: br }),
                (Max, Loc::Flt { r: d, .. }) => Some(Instr::MaxF64 { dst: d, a: ar, b: br }),
                (Eq, Loc::Int { r: d, .. }) => Some(Instr::EqF64 { dst: d, a: ar, b: br }),
                (Neq, Loc::Int { r: d, .. }) => Some(Instr::NeqF64 { dst: d, a: ar, b: br }),
                (Lt, Loc::Int { r: d, .. }) => Some(Instr::LtF64 { dst: d, a: ar, b: br }),
                (Le, Loc::Int { r: d, .. }) => Some(Instr::LeF64 { dst: d, a: ar, b: br }),
                _ => None,
            },
            (
                Loc::Flt { r: ar, st: ScalarType::F32 },
                Loc::Flt { r: br, st: ScalarType::F32 },
            ) => match (op, dst) {
                (Add, Loc::Flt { r: d, .. }) => Some(Instr::AddF32 { dst: d, a: ar, b: br }),
                (Sub, Loc::Flt { r: d, .. }) => Some(Instr::SubF32 { dst: d, a: ar, b: br }),
                (Mul, Loc::Flt { r: d, .. }) => Some(Instr::MulF32 { dst: d, a: ar, b: br }),
                (Div, Loc::Flt { r: d, .. }) => Some(Instr::DivF32 { dst: d, a: ar, b: br }),
                _ => None,
            },
            _ => None,
        };
        match ins {
            Some(i) => self.emit(f, i),
            None => self.emit(f, Instr::BinGen { op, a, b, dst }),
        }
        Ok(())
    }

    // -- SOACs ---------------------------------------------------------

    fn compile_soac(&mut self, f: FuncId, so: &Soac, pat: &[Param]) -> Result<()> {
        let arr_inputs = |c: &Self, arrs: &[VName]| -> Result<(Vec<u32>, Vec<String>)> {
            let mut regs = Vec::with_capacity(arrs.len());
            let mut names = Vec::with_capacity(arrs.len());
            for a in arrs {
                let (r, n) = c.arr_reg(*a)?;
                regs.push(r);
                names.push(n);
            }
            Ok((regs, names))
        };
        // Split an operator lambda into accumulator and right-hand
        // parameters (`k` = number of neutral elements).
        let split = |lam: &Lambda, k: usize| -> Result<(Vec<Param>, Vec<Param>)> {
            if lam.params.len() < k {
                return err(format!("lambda arity {} vs {} arguments", lam.params.len(), k));
            }
            Ok((lam.params[..k].to_vec(), lam.params[k..].to_vec()))
        };
        let cs = match so {
            Soac::Map { w, lam, arrs } => {
                let w = self.op_of_subexp(w)?;
                let (arrs, arr_names) = arr_inputs(self, arrs)?;
                let elems = self.lam_params(&lam.params);
                let step = self.new_func();
                let outs = self.compile_body(step, &lam.body)?;
                CompiledSoac {
                    kind: SoacKind::Map,
                    w,
                    arrs,
                    arr_names,
                    elems,
                    nes: vec![],
                    accs: vec![],
                    step,
                    outs,
                    ret: lam.ret.clone(),
                    dsts: vec![],
                }
            }
            Soac::Reduce { w, lam, nes, arrs } | Soac::Scan { w, lam, nes, arrs } => {
                let kind = if matches!(so, Soac::Reduce { .. }) {
                    SoacKind::Reduce
                } else {
                    SoacKind::Scan
                };
                let w = self.op_of_subexp(w)?;
                let (arrs, arr_names) = arr_inputs(self, arrs)?;
                let (accp, elemp) = split(lam, nes.len())?;
                let accs = self.lam_params(&accp);
                let elems = self.lam_params(&elemp);
                let nes: Vec<Loc> =
                    nes.iter().map(|ne| self.loc_of_subexp(f, ne)).collect::<Result<_>>()?;
                let step = self.new_func();
                let res = self.compile_body(step, &lam.body)?;
                if res.len() != accs.len() {
                    return err(format!(
                        "lambda arity {} vs {} arguments",
                        lam.params.len(),
                        accs.len() + res.len()
                    ));
                }
                self.movs_parallel(step, &res, &accs)?;
                CompiledSoac {
                    kind,
                    w,
                    arrs,
                    arr_names,
                    elems,
                    nes,
                    accs: accs.clone(),
                    step,
                    outs: accs,
                    ret: lam.ret.clone(),
                    dsts: vec![],
                }
            }
            Soac::Redomap { w, red, map, nes, arrs }
            | Soac::Scanomap { w, scan: red, map, nes, arrs } => {
                let kind = if matches!(so, Soac::Redomap { .. }) {
                    SoacKind::Redomap
                } else {
                    SoacKind::Scanomap
                };
                let w = self.op_of_subexp(w)?;
                let (arrs, arr_names) = arr_inputs(self, arrs)?;
                let elems = self.lam_params(&map.params);
                let (accp, rhsp) = split(red, nes.len())?;
                let accs = self.lam_params(&accp);
                let rhs = self.lam_params(&rhsp);
                let nes: Vec<Loc> =
                    nes.iter().map(|ne| self.loc_of_subexp(f, ne)).collect::<Result<_>>()?;
                let step = self.new_func();
                let mres = self.compile_body(step, &map.body)?;
                if mres.len() != rhs.len() {
                    return err(format!(
                        "lambda arity {} vs {} arguments",
                        red.params.len(),
                        accs.len() + mres.len()
                    ));
                }
                self.movs(step, &mres, &rhs)?;
                let rres = self.compile_body(step, &red.body)?;
                if rres.len() != accs.len() {
                    return err(format!(
                        "lambda arity {} vs {} arguments",
                        red.params.len(),
                        accs.len() + rres.len()
                    ));
                }
                self.movs_parallel(step, &rres, &accs)?;
                CompiledSoac {
                    kind,
                    w,
                    arrs,
                    arr_names,
                    elems,
                    nes,
                    accs: accs.clone(),
                    step,
                    outs: accs,
                    ret: red.ret.clone(),
                    dsts: vec![],
                }
            }
        };
        self.arity(cs.outs.len(), pat)?;
        if cs.arrs.len() != cs.elems.len() {
            return err(format!(
                "lambda arity {} vs {} arguments",
                cs.elems.len(),
                cs.arrs.len()
            ));
        }
        let dsts = self.bind_pat(pat);
        let id = self.soacs.len() as u32;
        self.soacs.push(CompiledSoac { dsts, ..cs });
        self.emit(f, Instr::Soac(id));
        Ok(())
    }

    // -- segmented operators ------------------------------------------

    fn compile_seg(&mut self, f: FuncId, op: &SegOp, stm: &Stm) -> Result<()> {
        if op.ctx.is_empty() {
            return err("segop with empty context");
        }
        let widths: Vec<Operand> =
            op.ctx.iter().map(|d| self.op_of_subexp(&d.width)).collect::<Result<_>>()?;
        let mut ctx = Vec::with_capacity(op.ctx.len());
        for (dim, w) in op.ctx.iter().zip(widths) {
            let mut binds = Vec::with_capacity(dim.binds.len());
            for (p, arr) in &dim.binds {
                let (areg, name) = self.arr_reg(*arr)?;
                let dst = self.loc_for_type(&p.ty);
                self.env.insert(p.name, dst);
                binds.push(CBind { arr: areg, name, dst });
            }
            ctx.push(CDim { width: w, binds });
        }
        let kind = match &op.kind {
            SegKind::Map => {
                let body = self.new_func();
                let outs = self.compile_body(body, &op.body)?;
                CSegKind::Map { body, outs }
            }
            SegKind::Red { op: lam, nes } | SegKind::Scan { op: lam, nes } => {
                let k = nes.len();
                if lam.params.len() < k {
                    return err(format!("lambda arity {} vs {} arguments", lam.params.len(), k));
                }
                let accs = self.lam_params(&lam.params[..k]);
                let rhs = self.lam_params(&lam.params[k..]);
                let nes: Vec<Loc> =
                    nes.iter().map(|ne| self.loc_of_subexp(f, ne)).collect::<Result<_>>()?;
                // Fold: body, then the operator applied to accs ++ body
                // results, leaving the new accumulators in `accs`.
                let fold = self.new_func();
                let bres = self.compile_body(fold, &op.body)?;
                if bres.len() != rhs.len() {
                    return err(format!(
                        "lambda arity {} vs {} arguments",
                        lam.params.len(),
                        k + bres.len()
                    ));
                }
                self.movs(fold, &bres, &rhs)?;
                let lres = self.compile_body(fold, &lam.body)?;
                if lres.len() != accs.len() {
                    return err(format!(
                        "lambda arity {} vs {} arguments",
                        lam.params.len(),
                        k + lres.len()
                    ));
                }
                self.movs_parallel(fold, &lres, &accs)?;
                // Combine: the operator alone on accs ++ rhs (a second,
                // independent compilation of the lambda body).
                let combine = self.new_func();
                let cres = self.compile_body(combine, &lam.body)?;
                if cres.len() != accs.len() {
                    return err(format!(
                        "lambda arity {} vs {} arguments",
                        lam.params.len(),
                        k + cres.len()
                    ));
                }
                self.movs_parallel(combine, &cres, &accs)?;
                if matches!(op.kind, SegKind::Red { .. }) {
                    CSegKind::Red { fold, combine, nes, accs, rhs }
                } else {
                    CSegKind::Scan { fold, combine, nes, accs, rhs }
                }
            }
        };
        self.arity(kind.outs().len(), &stm.pat)?;
        let dsts = self.bind_pat(&stm.pat);
        let name = stm
            .pat
            .first()
            .map(|p| p.name.to_string())
            .unwrap_or_else(|| kind.name().to_string());
        let id = self.segs.len() as u32;
        self.segs.push(CompiledSeg {
            kind,
            level: op.level,
            ctx,
            body_ret: op.body_ret.clone(),
            dsts,
            name,
            prov: stm.prov,
        });
        self.emit(f, Instr::Seg(id));
        Ok(())
    }
}
