//! # flat-vm
//!
//! The compiled tier of the CPU backend: lowers a flattened
//! target-language [`Program`] to a flat register bytecode and runs it
//! on the same work-stealing pool as `flat-exec`.
//!
//! * **Lowering** ([`compile`]) resolves every name to a dense register
//!   index in one of three banks (`i64`, `f64`, array handles) at
//!   compile time; scalar arithmetic on `i64`/`f64` gets monomorphic
//!   opcodes so the inner loop is a `match` on a `#[repr(u8)]` opcode
//!   over unboxed register files, with no hashing, boxing, or dynamic
//!   type dispatch. `iota`/`replicate`/`rearrange`/indexing are index
//!   arithmetic over raw buffers.
//! * **Execution** ([`run_program`], [`run_compiled`]) reuses
//!   `flat-exec`'s kernel decomposition verbatim — grain-size chunking
//!   for `segmap`, block partials combined left-to-right for `segred`,
//!   the three-pass `segscan` — on the same vendored `workpool`, so
//!   chunk boundaries, reassociation, threshold live-dispatch,
//!   `path_signature`, launch records, and telemetry are all inherited.
//!   Results are bitwise identical to `flat-exec` at every thread count
//!   and grain, and the tree-walking interpreter remains the semantic
//!   oracle for both.
//! * **Observability**: [`disasm`] renders the bytecode for golden
//!   tests; runs emit `vm.*` metrics parallel to `exec.*`.
//!
//! See `docs/EXECUTION.md` ("The compiled tier") for the design.

pub mod bytecode;
mod compile;
mod run;

pub use bytecode::{disasm, CompiledProgram, Instr, Loc, Operand};
pub use compile::compile;
pub use run::{run_compiled, run_program};

use flat_exec::{ExecConfig, ExecError, ExecReport, Measurement};
use flat_ir::ast::Program;
use flat_ir::interp::Thresholds;
use flat_ir::value::Value;

/// Median-of-k wall-clock measurement, mirroring [`flat_exec::measure`]
/// but compiling the program once, outside the timed region — the
/// lowering cost is paid per program, not per run.
pub fn measure(
    prog: &Program,
    args: &[Value],
    cfg: &ExecConfig,
    reps: usize,
    warmup: usize,
) -> Result<(ExecReport, Measurement), ExecError> {
    let _span = flat_obs::span("vm", "vm.measure");
    let compiled = compile(prog)?;
    for _ in 0..warmup {
        run_compiled(&compiled, args, cfg)?;
    }
    let reps = reps.max(1);
    let mut runs = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let rep = run_compiled(&compiled, args, cfg)?;
        runs.push(rep.wall_nanos);
        last = Some(rep);
    }
    Ok((last.expect("reps >= 1"), Measurement::from_runs(runs)))
}

/// Run a program under live dispatch with the given thresholds, as
/// [`flat_exec::run_live`] but through the bytecode tier.
pub fn run_live(
    prog: &Program,
    args: &[Value],
    thresholds: &Thresholds,
    threads: Option<usize>,
) -> Result<ExecReport, ExecError> {
    let cfg = ExecConfig {
        thresholds: thresholds.clone(),
        threads,
        ..ExecConfig::default()
    };
    run_program(prog, args, &cfg)
}
