//! The register bytecode: what [`crate::compile`] lowers `flat-ir` to
//! and what [`crate::run`] executes.
//!
//! A compiled program is a set of *functions* (flat `Vec<Instr>` with no
//! internal control flow — `if`/`loop` are structured instructions that
//! name other functions), a table of compiled segmented operators, and a
//! table of compiled SOACs. Every `flat-ir` name is resolved at compile
//! time to a dense index into one of three register banks:
//!
//! * `ints` (`Vec<i64>`) — `i64` raw, `i32` sign-extended, `bool` as 0/1;
//! * `flts` (`Vec<f64>`) — `f64` raw, `f32` widened on write and
//!   narrowed on read (a bitwise round-trip for every value the
//!   toolchain produces);
//! * `arrs` (`Vec<Option<Arc<ArrayVal>>>`) — whole arrays by reference.
//!
//! Registers are never reused: each binding, lambda parameter, and
//! temporary gets a fresh index. That makes a kernel task's private
//! frame a plain clone of the register files, and lets the sequential
//! combine passes of `segred`/`segscan` run directly on the host frame —
//! any register they clobber is dead afterwards.
//!
//! The hot interpreter loop is a `match` on [`Instr`] (`#[repr(u8)]`
//! discriminant) over the unboxed banks. The common `i64`/`f64`
//! arithmetic and comparison operators get monomorphic opcodes;
//! everything rarer ([`Instr::BinGen`]/[`Instr::UnGen`]) reconstructs
//! `Const`s and defers to the reference interpreter's scalar evaluators,
//! so scalar semantics (wrapping, NaN ordering, division errors) are the
//! interpreter's by construction.

use flat_ir::ast::{BinOp, Level, ThresholdId, UnOp};
use flat_ir::prov::Prov;
use flat_ir::types::{ScalarType, Type};
use std::fmt;

/// Index of a function (a straight-line instruction sequence).
pub type FuncId = u32;

/// A typed register reference: which bank, which index, and the scalar
/// type the stored word encodes (for `Const` reconstruction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Loc {
    /// Integer bank: `i64` raw, `i32` sign-extended, `bool` as 0/1.
    Int { r: u32, st: ScalarType },
    /// Float bank: `f64` raw, `f32` widened.
    Flt { r: u32, st: ScalarType },
    /// Array bank.
    Arr { r: u32 },
}

impl Loc {
    /// The scalar type a scalar register encodes (arrays have none).
    pub fn scalar_type(&self) -> Option<ScalarType> {
        match *self {
            Loc::Int { st, .. } | Loc::Flt { st, .. } => Some(st),
            Loc::Arr { .. } => None,
        }
    }
}

/// An `i64`-valued operand in a driver position (widths, loop bounds,
/// index expressions, threshold factors): either an immediate or an
/// integer register read raw.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    Const(i64),
    Reg(u32),
}

/// One bytecode instruction. Monomorphic opcodes carry bare register
/// indices into a known bank; the generic fallbacks carry full [`Loc`]s.
#[derive(Clone, Debug)]
#[repr(u8)]
pub enum Instr {
    // -- constants and moves ------------------------------------------
    IConst { dst: u32, v: i64 },
    FConst { dst: u32, v: f64 },
    IMov { dst: u32, src: u32 },
    FMov { dst: u32, src: u32 },
    AMov { dst: u32, src: u32 },
    // -- monomorphic i64 ----------------------------------------------
    AddI64 { dst: u32, a: u32, b: u32 },
    SubI64 { dst: u32, a: u32, b: u32 },
    MulI64 { dst: u32, a: u32, b: u32 },
    MinI64 { dst: u32, a: u32, b: u32 },
    MaxI64 { dst: u32, a: u32, b: u32 },
    NegI64 { dst: u32, a: u32 },
    EqI64 { dst: u32, a: u32, b: u32 },
    NeqI64 { dst: u32, a: u32, b: u32 },
    LtI64 { dst: u32, a: u32, b: u32 },
    LeI64 { dst: u32, a: u32, b: u32 },
    // -- monomorphic f64 (NegF64 also covers f32: sign flip commutes
    //    with widening) ------------------------------------------------
    AddF64 { dst: u32, a: u32, b: u32 },
    SubF64 { dst: u32, a: u32, b: u32 },
    MulF64 { dst: u32, a: u32, b: u32 },
    DivF64 { dst: u32, a: u32, b: u32 },
    MinF64 { dst: u32, a: u32, b: u32 },
    MaxF64 { dst: u32, a: u32, b: u32 },
    NegF64 { dst: u32, a: u32 },
    EqF64 { dst: u32, a: u32, b: u32 },
    NeqF64 { dst: u32, a: u32, b: u32 },
    LtF64 { dst: u32, a: u32, b: u32 },
    LeF64 { dst: u32, a: u32, b: u32 },
    // -- monomorphic f32 (narrow operands, compute at f32, widen) -----
    AddF32 { dst: u32, a: u32, b: u32 },
    SubF32 { dst: u32, a: u32, b: u32 },
    MulF32 { dst: u32, a: u32, b: u32 },
    DivF32 { dst: u32, a: u32, b: u32 },
    // -- bool ----------------------------------------------------------
    Not { dst: u32, a: u32 },
    // -- generic scalar fallbacks (i32, bool logic, pow/div/rem, casts,
    //    transcendentals): reconstruct Consts, defer to the interpreter
    BinGen { op: BinOp, a: Loc, b: Loc, dst: Loc },
    UnGen { op: UnOp, a: Loc, dst: Loc },
    // -- incremental flattening's live dispatch ------------------------
    CmpThr { id: ThresholdId, factors: Box<[Operand]>, dst: u32 },
    // -- array constructors and views ---------------------------------
    Index { arr: u32, idxs: Box<[Operand]>, dst: Loc },
    Iota { n: Operand, dst: u32 },
    RepScalar { n: Operand, elem: Loc, dst: u32 },
    RepArr { n: Operand, elem: u32, dst: u32 },
    Rearrange { perm: Box<[usize]>, arr: u32, dst: u32 },
    ArrayLit { elems: Box<[Loc]>, st: ScalarType, dst: u32 },
    // -- structured control --------------------------------------------
    If { cond: u32, tf: FuncId, ff: FuncId },
    Loop { ivar: u32, bound: Operand, body: FuncId },
    // -- side-table dispatch -------------------------------------------
    Soac(u32),
    Seg(u32),
}

/// One bound context-dimension parameter of a compiled segop.
#[derive(Clone, Debug)]
pub struct CBind {
    /// Source array register.
    pub arr: u32,
    /// Source array's surface name (error messages only).
    pub name: String,
    /// Where the element (row or scalar) lands.
    pub dst: Loc,
}

/// One compiled context dimension.
#[derive(Clone, Debug)]
pub struct CDim {
    pub width: Operand,
    pub binds: Vec<CBind>,
}

/// The per-kind piece of a compiled segop. `fold` runs the segop body
/// for one inner element and folds the result into `accs` with the
/// operator; `combine` applies the operator to `accs ++ rhs`, leaving
/// the result in `accs`.
#[derive(Clone, Debug)]
pub enum CSegKind {
    Map { body: FuncId, outs: Vec<Loc> },
    Red { fold: FuncId, combine: FuncId, nes: Vec<Loc>, accs: Vec<Loc>, rhs: Vec<Loc> },
    Scan { fold: FuncId, combine: FuncId, nes: Vec<Loc>, accs: Vec<Loc>, rhs: Vec<Loc> },
}

impl CSegKind {
    pub fn name(&self) -> &'static str {
        match self {
            CSegKind::Map { .. } => "segmap",
            CSegKind::Red { .. } => "segred",
            CSegKind::Scan { .. } => "segscan",
        }
    }

    /// The locations holding one point's results after the body/fold ran.
    pub fn outs(&self) -> &[Loc] {
        match self {
            CSegKind::Map { outs, .. } => outs,
            CSegKind::Red { accs, .. } | CSegKind::Scan { accs, .. } => accs,
        }
    }
}

/// A compiled segmented operator (the side table an [`Instr::Seg`]
/// indexes into).
#[derive(Clone, Debug)]
pub struct CompiledSeg {
    pub kind: CSegKind,
    pub level: Level,
    pub ctx: Vec<CDim>,
    /// Per-result element types, for empty iteration spaces.
    pub body_ret: Vec<Type>,
    /// Where the finished segop results land.
    pub dsts: Vec<Loc>,
    /// Launch name: the first value the segop binds.
    pub name: String,
    pub prov: Prov,
}

/// Which SOAC a [`CompiledSoac`] drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SoacKind {
    Map,
    Reduce,
    Scan,
    Redomap,
    Scanomap,
}

/// A compiled SOAC. SOACs execute sequentially exactly as in the
/// interpreter: `step` runs once per element with the element parameters
/// bound; for reductions and scans it also folds into `accs`.
#[derive(Clone, Debug)]
pub struct CompiledSoac {
    pub kind: SoacKind,
    pub w: Operand,
    /// Input array registers, plus surface names for error messages.
    pub arrs: Vec<u32>,
    pub arr_names: Vec<String>,
    /// Element parameter locations, one per input array.
    pub elems: Vec<Loc>,
    /// Neutral-element locations (empty for `map`).
    pub nes: Vec<Loc>,
    /// Accumulator locations (empty for `map`).
    pub accs: Vec<Loc>,
    pub step: FuncId,
    /// Per-element result locations (`accs` for reductions/scans).
    pub outs: Vec<Loc>,
    /// Per-element result types, for width-0 inputs.
    pub ret: Vec<Type>,
    pub dsts: Vec<Loc>,
}

/// A whole lowered program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub name: String,
    /// Parameter locations, types, and surface names, in order.
    pub params: Vec<(Loc, Type, String)>,
    /// Locations of the program results.
    pub results: Vec<Loc>,
    /// The entry function.
    pub main: FuncId,
    pub funcs: Vec<Vec<Instr>>,
    pub segs: Vec<CompiledSeg>,
    pub soacs: Vec<CompiledSoac>,
    /// Bank sizes.
    pub n_int: u32,
    pub n_flt: u32,
    pub n_arr: u32,
}

// ---------------------------------------------------------------------
// Disassembly. Prints register indices and structure only — never
// surface names, whose numbering is process-global and would make
// goldens unstable.
// ---------------------------------------------------------------------

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Loc::Int { r, st } => write!(f, "i{r}:{st}"),
            Loc::Flt { r, st } => write!(f, "f{r}:{st}"),
            Loc::Arr { r } => write!(f, "a{r}"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::Const(v) => write!(f, "#{v}"),
            Operand::Reg(r) => write!(f, "i{r}"),
        }
    }
}

fn locs(ls: &[Loc]) -> String {
    let s: Vec<String> = ls.iter().map(|l| l.to_string()).collect();
    format!("[{}]", s.join(", "))
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        let bin3 = |f: &mut fmt::Formatter<'_>, n: &str, d: &u32, a: &u32, b: &u32, bank: char| {
            write!(f, "{n:<12} {bank}{d} <- {bank}{a}, {bank}{b}")
        };
        match self {
            IConst { dst, v } => write!(f, "{:<12} i{dst} <- {v}", "iconst"),
            FConst { dst, v } => write!(f, "{:<12} f{dst} <- {v:?}", "fconst"),
            IMov { dst, src } => write!(f, "{:<12} i{dst} <- i{src}", "mov"),
            FMov { dst, src } => write!(f, "{:<12} f{dst} <- f{src}", "mov"),
            AMov { dst, src } => write!(f, "{:<12} a{dst} <- a{src}", "mov"),
            AddI64 { dst, a, b } => bin3(f, "add.i64", dst, a, b, 'i'),
            SubI64 { dst, a, b } => bin3(f, "sub.i64", dst, a, b, 'i'),
            MulI64 { dst, a, b } => bin3(f, "mul.i64", dst, a, b, 'i'),
            MinI64 { dst, a, b } => bin3(f, "min.i64", dst, a, b, 'i'),
            MaxI64 { dst, a, b } => bin3(f, "max.i64", dst, a, b, 'i'),
            NegI64 { dst, a } => write!(f, "{:<12} i{dst} <- i{a}", "neg.i64"),
            EqI64 { dst, a, b } => bin3(f, "eq.i64", dst, a, b, 'i'),
            NeqI64 { dst, a, b } => bin3(f, "neq.i64", dst, a, b, 'i'),
            LtI64 { dst, a, b } => bin3(f, "lt.i64", dst, a, b, 'i'),
            LeI64 { dst, a, b } => bin3(f, "le.i64", dst, a, b, 'i'),
            AddF64 { dst, a, b } => bin3(f, "add.f64", dst, a, b, 'f'),
            SubF64 { dst, a, b } => bin3(f, "sub.f64", dst, a, b, 'f'),
            MulF64 { dst, a, b } => bin3(f, "mul.f64", dst, a, b, 'f'),
            DivF64 { dst, a, b } => bin3(f, "div.f64", dst, a, b, 'f'),
            MinF64 { dst, a, b } => bin3(f, "min.f64", dst, a, b, 'f'),
            MaxF64 { dst, a, b } => bin3(f, "max.f64", dst, a, b, 'f'),
            NegF64 { dst, a } => write!(f, "{:<12} f{dst} <- f{a}", "neg.f64"),
            EqF64 { dst, a, b } => write!(f, "{:<12} i{dst} <- f{a}, f{b}", "eq.f64"),
            NeqF64 { dst, a, b } => write!(f, "{:<12} i{dst} <- f{a}, f{b}", "neq.f64"),
            LtF64 { dst, a, b } => write!(f, "{:<12} i{dst} <- f{a}, f{b}", "lt.f64"),
            LeF64 { dst, a, b } => write!(f, "{:<12} i{dst} <- f{a}, f{b}", "le.f64"),
            AddF32 { dst, a, b } => bin3(f, "add.f32", dst, a, b, 'f'),
            SubF32 { dst, a, b } => bin3(f, "sub.f32", dst, a, b, 'f'),
            MulF32 { dst, a, b } => bin3(f, "mul.f32", dst, a, b, 'f'),
            DivF32 { dst, a, b } => bin3(f, "div.f32", dst, a, b, 'f'),
            Not { dst, a } => write!(f, "{:<12} i{dst} <- i{a}", "not"),
            BinGen { op, a, b, dst } => write!(f, "{:<12} {dst} <- {a}, {b}", format!("bin.{op:?}").to_lowercase()),
            UnGen { op, a, dst } => write!(f, "{:<12} {dst} <- {a}", format!("un.{op:?}").to_lowercase()),
            CmpThr { id, factors, dst } => {
                let fs: Vec<String> = factors.iter().map(|o| o.to_string()).collect();
                write!(f, "{:<12} i{dst} <- t{} [{}]", "cmpthr", id.0, fs.join(", "))
            }
            Index { arr, idxs, dst } => {
                let is: Vec<String> = idxs.iter().map(|o| o.to_string()).collect();
                write!(f, "{:<12} {dst} <- a{arr}[{}]", "index", is.join(", "))
            }
            Iota { n, dst } => write!(f, "{:<12} a{dst} <- {n}", "iota"),
            RepScalar { n, elem, dst } => write!(f, "{:<12} a{dst} <- {n} x {elem}", "replicate"),
            RepArr { n, elem, dst } => write!(f, "{:<12} a{dst} <- {n} x a{elem}", "replicate"),
            Rearrange { perm, arr, dst } => write!(f, "{:<12} a{dst} <- a{arr} {perm:?}", "rearrange"),
            ArrayLit { elems, st, dst } => write!(f, "{:<12} a{dst} <- {st} {}", "arraylit", locs(elems)),
            If { cond, tf, ff } => write!(f, "{:<12} i{cond} ? fn{tf} : fn{ff}", "if"),
            Loop { ivar, bound, body } => write!(f, "{:<12} i{ivar} < {bound} : fn{body}", "loop"),
            Soac(id) => write!(f, "{:<12} s{id}", "soac"),
            Seg(id) => write!(f, "{:<12} g{id}", "seg"),
        }
    }
}

impl fmt::Display for CompiledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "vm program: funcs={} segs={} soacs={} regs int={} flt={} arr={}",
            self.funcs.len(),
            self.segs.len(),
            self.soacs.len(),
            self.n_int,
            self.n_flt,
            self.n_arr
        )?;
        writeln!(f, "params: {}", {
            // Rank, not the full type: dimension sub-expressions embed
            // surface names, which would destabilize goldens.
            let s: Vec<String> =
                self.params.iter().map(|(l, t, _)| format!("{l}^{}", t.rank())).collect();
            s.join(", ")
        })?;
        writeln!(f, "results: {}", locs(&self.results))?;
        for (i, body) in self.funcs.iter().enumerate() {
            let main = if i as FuncId == self.main { " (entry)" } else { "" };
            writeln!(f, "fn{i}:{main}")?;
            for ins in body {
                writeln!(f, "  {ins}")?;
            }
        }
        for (i, sg) in self.segs.iter().enumerate() {
            writeln!(f, "g{i}: {} level={}", sg.kind.name(), sg.level)?;
            for (k, dim) in sg.ctx.iter().enumerate() {
                let bs: Vec<String> =
                    dim.binds.iter().map(|b| format!("{} <- a{}[.]", b.dst, b.arr)).collect();
                writeln!(f, "  dim {k}: width={} binds=[{}]", dim.width, bs.join(", "))?;
            }
            match &sg.kind {
                CSegKind::Map { body, outs } => {
                    writeln!(f, "  body=fn{body} outs={}", locs(outs))?;
                }
                CSegKind::Red { fold, combine, nes, accs, rhs }
                | CSegKind::Scan { fold, combine, nes, accs, rhs } => {
                    writeln!(
                        f,
                        "  fold=fn{fold} combine=fn{combine} nes={} accs={} rhs={}",
                        locs(nes),
                        locs(accs),
                        locs(rhs)
                    )?;
                }
            }
            writeln!(f, "  dsts={}", locs(&sg.dsts))?;
        }
        for (i, so) in self.soacs.iter().enumerate() {
            writeln!(
                f,
                "s{i}: {:?} w={} arrs=[{}] elems={} nes={} accs={} step=fn{} outs={} dsts={}",
                so.kind,
                so.w,
                so.arrs.iter().map(|r| format!("a{r}")).collect::<Vec<_>>().join(", "),
                locs(&so.elems),
                locs(&so.nes),
                locs(&so.accs),
                so.step,
                locs(&so.outs),
                locs(&so.dsts)
            )?;
        }
        Ok(())
    }
}

/// Render the full disassembly of a compiled program.
pub fn disasm(p: &CompiledProgram) -> String {
    p.to_string()
}
