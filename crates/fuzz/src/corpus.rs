//! On-disk corpus of shrunk failing programs.
//!
//! A corpus case is a plain `.fut` file whose header comments carry
//! the input configuration the oracle needs to replay it:
//!
//! ```text
//! -- flat-fuzz case: seed-42-iter-17
//! -- n=2 m=3 data-seed=905
//! def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) = ...
//! ```
//!
//! Because `--` comments are stripped by the lexer, the *whole file*
//! is the program source — no separate manifest to drift out of sync.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Stable case name; doubles as the file stem.
    pub name: String,
    /// Full program text, including the header comments.
    pub source: String,
    pub n: i64,
    pub m: i64,
    pub data_seed: u64,
}

impl CorpusCase {
    pub fn new(name: impl Into<String>, program: &str, n: i64, m: i64, data_seed: u64) -> Self {
        let name = name.into();
        let source = format!(
            "-- flat-fuzz case: {name}\n-- n={n} m={m} data-seed={data_seed}\n{program}"
        );
        CorpusCase { name, source, n, m, data_seed }
    }

    /// Parse a corpus file back into a case. Header lines are optional
    /// (missing fields fall back to n=2, m=3, data-seed=0) so that
    /// hand-written seed cases stay easy to author.
    pub fn parse(name: impl Into<String>, text: &str) -> CorpusCase {
        let (mut n, mut m, mut data_seed) = (2i64, 3i64, 0u64);
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with("--") {
                break; // header ends at the first non-comment line
            }
            for tok in line.trim_start_matches('-').split_whitespace() {
                if let Some(v) = tok.strip_prefix("n=") {
                    n = v.parse().unwrap_or(n);
                } else if let Some(v) = tok.strip_prefix("m=") {
                    m = v.parse().unwrap_or(m);
                } else if let Some(v) = tok.strip_prefix("data-seed=") {
                    data_seed = v.parse().unwrap_or(data_seed);
                }
            }
        }
        CorpusCase { name: name.into(), source: text.to_string(), n, m, data_seed }
    }

    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.fut", self.name));
        fs::write(&path, &self.source)?;
        Ok(path)
    }
}

/// Load every `.fut` file in `dir`, sorted by name for determinism.
/// A missing directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusCase>> {
    let mut cases = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(cases),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("fut") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unnamed")
            .to_string();
        let text = fs::read_to_string(&path)?;
        cases.push(CorpusCase::parse(name, &text));
    }
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_header_comments() {
        let case = CorpusCase::new(
            "seed-1-iter-9",
            "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =\n  reduce (+) 0 ys",
            4,
            1,
            77,
        );
        let back = CorpusCase::parse(case.name.clone(), &case.source);
        assert_eq!(back, case);
        // The source must still lex/parse despite the header.
        let prog = flat_lang::parse_program(&case.source).unwrap();
        assert!(prog.find("main").is_some());
    }

    #[test]
    fn header_defaults_apply_to_bare_programs() {
        let c = CorpusCase::parse(
            "bare",
            "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =\n  c",
        );
        assert_eq!((c.n, c.m, c.data_seed), (2, 3, 0));
    }

    #[test]
    fn writes_and_loads_a_directory() {
        let dir = std::env::temp_dir().join("flat-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let a = CorpusCase::new(
            "a-case",
            "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =\n  c",
            1,
            2,
            3,
        );
        a.write_to(&dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded, vec![a]);
        let _ = fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).unwrap().is_empty());
    }
}
