//! flat-fuzz: differential fuzzing of version equivalence.
//!
//! The incremental flattener's whole premise is that every generated
//! code version — each path through the threshold branching tree — is
//! semantically identical, and only *performance* differs. This crate
//! tests that premise end to end:
//!
//! 1. [`gen`] produces size-bounded, well-typed surface programs over
//!    a fixed entry signature, restricted so that every oracle leg is
//!    exact (wrapping `i64` arithmetic, exact neutral elements, sizes
//!    known to the simulator).
//! 2. [`eval`] is an independent reference interpreter for the surface
//!    language — deliberately naive, sharing no code with the compiler.
//! 3. [`oracle`] runs each program through parse → elaborate → fuse →
//!    flatten, then *enumerates the threshold paths* of the flattened
//!    program, forces each version in turn, and asserts bitwise
//!    agreement between the reference result, the IR interpreter at
//!    each stage, every forced version, and the GPU simulator's
//!    recorded decision path.
//! 4. [`shrink`] delta-debugs failures down to minimal programs, and
//!    [`corpus`] persists them as replayable `.fut` regression cases.
//!
//! The campaign driver below ties these together; the `flatc fuzz`
//! subcommand and the committed `tests/corpus/` suite are thin wrappers
//! around [`run_campaign`] and [`replay_corpus`].

pub mod corpus;
pub mod eval;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::path::{Path, PathBuf};

use rand::prelude::*;

use crate::corpus::CorpusCase;
use crate::oracle::{Failure, FuzzInputs, Oracle};

/// Campaign configuration for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of programs to generate and check.
    pub iters: usize,
    /// Master seed; the whole campaign is deterministic in this.
    pub seed: u64,
    /// Where to write shrunk failing cases (`None` = don't persist).
    pub failures_dir: Option<PathBuf>,
    /// Stop after this many failures (they are expensive to shrink).
    pub max_failures: usize,
    /// Shrinker budget: oracle re-runs per failing program.
    pub shrink_trials: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            iters: 100,
            seed: 0,
            failures_dir: None,
            max_failures: 5,
            shrink_trials: 400,
        }
    }
}

/// A failure found (and shrunk) during a campaign.
#[derive(Debug)]
pub struct FailureCase {
    /// Iteration index at which the original program failed.
    pub iter: usize,
    /// Oracle stage of the original failure (shrinking preserves it).
    pub stage: &'static str,
    /// Detail message of the original failure.
    pub detail: String,
    /// The shrunk, replayable case.
    pub case: CorpusCase,
}

/// Outcome of a fuzzing campaign.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    pub iters: usize,
    pub passed: usize,
    pub failures: Vec<FailureCase>,
    /// Largest number of distinct incremental-flattening path
    /// signatures any single program exercised. The oracle is only
    /// doing its job if this is ≥ 2 on a healthy campaign.
    pub best_distinct_paths: usize,
    /// How many programs exercised ≥ 2 distinct paths.
    pub multipath_programs: usize,
    /// Total forced versions checked across all programs and modes.
    pub versions_checked: usize,
}

impl FuzzSummary {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run a deterministic fuzzing campaign.
pub fn run_campaign(cfg: &FuzzConfig) -> FuzzSummary {
    run_campaign_with(cfg, &Oracle::new(), |_| {})
}

/// [`run_campaign`] with a custom oracle (e.g. one with a mutation
/// hook installed) and a per-iteration progress callback.
pub fn run_campaign_with(
    cfg: &FuzzConfig,
    oracle: &Oracle,
    mut progress: impl FnMut(usize),
) -> FuzzSummary {
    let mut master = StdRng::seed_from_u64(cfg.seed);
    let mut summary = FuzzSummary { iters: cfg.iters, ..FuzzSummary::default() };

    for iter in 0..cfg.iters {
        progress(iter);
        // Derive all per-iteration randomness from the master stream so
        // the campaign is reproducible from (seed, iters) alone.
        let gen_seed = master.next_u64();
        let data_seed = master.next_u64();
        let n = master.gen_range(1i64..=4);
        let m = master.gen_range(1i64..=4);
        let budget = master.gen_range(4usize..=14);

        let def = gen::Gen::new(gen_seed).def(budget);
        let src = flat_lang::pretty::def(&def);
        let inputs = FuzzInputs::from_seed(n, m, data_seed);

        match oracle.check(&src, &inputs) {
            Ok(report) => {
                summary.passed += 1;
                summary.versions_checked += report.versions_checked;
                let distinct = report.distinct_paths();
                summary.best_distinct_paths = summary.best_distinct_paths.max(distinct);
                if distinct >= 2 {
                    summary.multipath_programs += 1;
                }
            }
            Err(failure) => {
                let case =
                    shrink_failure(oracle, &def, &inputs, &failure, cfg, iter);
                summary.failures.push(FailureCase {
                    iter,
                    stage: failure.stage,
                    detail: failure.detail,
                    case,
                });
                if summary.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
    }

    if let Some(dir) = &cfg.failures_dir {
        for f in &summary.failures {
            // Best-effort: a full disk shouldn't mask the fuzz result.
            let _ = f.case.write_to(dir);
        }
    }

    summary
}

/// Shrink a failing program to a minimal one that still fails at the
/// same oracle stage, and package it as a corpus case.
fn shrink_failure(
    oracle: &Oracle,
    def: &flat_lang::syntax::SDef,
    inputs: &FuzzInputs,
    failure: &Failure,
    cfg: &FuzzConfig,
    iter: usize,
) -> CorpusCase {
    let stage = failure.stage;
    let mut reproduces = |cand: &flat_lang::syntax::SDef| {
        let txt = flat_lang::pretty::def(cand);
        matches!(oracle.check(&txt, inputs), Err(f) if f.stage == stage)
    };
    let small = shrink::shrink_def(def, &mut reproduces, cfg.shrink_trials);
    let name = format!("seed-{}-iter-{}", cfg.seed, iter);
    CorpusCase::new(
        name,
        &flat_lang::pretty::def(&small),
        inputs.n,
        inputs.m,
        inputs.data_seed,
    )
}

/// Replay every corpus case in `dir` through the oracle. Returns the
/// per-case outcomes; an Err entry means the regression resurfaced.
pub fn replay_corpus(dir: &Path) -> std::io::Result<Vec<(String, Result<(), Failure>)>> {
    let oracle = Oracle::new();
    let mut out = Vec::new();
    for case in corpus::load_dir(dir)? {
        let inputs = FuzzInputs::from_seed(case.n, case.m, case.data_seed);
        let res = oracle.check(&case.source, &inputs).map(|_| ());
        out.push((case.name, res));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_exercises_multiple_paths() {
        let cfg = FuzzConfig { iters: 60, seed: 7, ..FuzzConfig::default() };
        let summary = run_campaign(&cfg);
        assert!(
            summary.ok(),
            "campaign found unexpected failures: {:?}",
            summary
                .failures
                .iter()
                .map(|f| format!("[{}] {}", f.stage, f.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(summary.passed, 60);
        assert!(
            summary.best_distinct_paths >= 2,
            "no generated program exercised multiple threshold paths \
             (best={}); the oracle is not covering the branching tree",
            summary.best_distinct_paths
        );
        assert!(summary.versions_checked > summary.passed);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = FuzzConfig { iters: 20, seed: 3, ..FuzzConfig::default() };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.versions_checked, b.versions_checked);
        assert_eq!(a.best_distinct_paths, b.best_distinct_paths);
    }

    #[test]
    fn broken_flattening_is_caught_and_shrunk() {
        // Install the deliberate bug: swap additive neutral elements
        // after elaboration. Any program whose result depends on a
        // (+, 0) reduce must now disagree with the reference.
        let oracle = Oracle {
            mutate_post_elab: Some(Box::new(|prog| {
                oracle::break_zero_neutral_elements(prog);
            })),
            ..Oracle::new()
        };
        let cfg = FuzzConfig {
            iters: 120,
            seed: 42,
            max_failures: 1,
            shrink_trials: 300,
            ..FuzzConfig::default()
        };
        let summary = run_campaign_with(&cfg, &oracle, |_| {});
        assert!(
            !summary.failures.is_empty(),
            "oracle failed to catch a deliberately broken neutral element"
        );
        let f = &summary.failures[0];
        // The shrunk case must still parse and must be small.
        let prog = flat_lang::parse_program(&f.case.source).unwrap();
        let def = prog.find("main").unwrap();
        assert!(
            shrink::size(&def.body) <= 12,
            "shrinker left a large program ({} nodes):\n{}",
            shrink::size(&def.body),
            f.case.source
        );
    }
}
