//! Size-bounded generator of well-typed surface programs.
//!
//! Every generated program has the fixed signature
//!
//! ```text
//! def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) = ...
//! ```
//!
//! so one input-construction recipe ([`crate::oracle::FuzzInputs`])
//! covers the whole corpus. Bodies draw from the nested-parallel core
//! of the language — `map`/`map2`/`reduce`/`scan`/`redomap` nests,
//! `loop`, `if`, `iota`, `replicate`, `transpose`/`rearrange`,
//! indexing, `let` chains and tuples — over wrapping `i64` arithmetic
//! only, so the reassociation performed by flattening is *exact* and
//! bitwise disagreement between code versions is always a bug.
//!
//! The generator is deliberately conservative about conditions: `if`
//! and comparison operands only involve sizes and constants, which the
//! shape-abstract GPU simulator can evaluate, keeping all four oracle
//! legs applicable to every generated program.

use flat_ir::prov::SrcLoc;
use flat_ir::ScalarType;
use flat_lang::syntax::*;
use rand::prelude::*;

/// A dimension in the generator's type universe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dim {
    /// The outer size parameter `n`.
    N,
    /// The inner size parameter `m`.
    M,
    /// A small positive constant.
    K(i64),
}

impl Dim {
    fn exp(self) -> SExp {
        match self {
            Dim::N => SExp::Var("n".into()),
            Dim::M => SExp::Var("m".into()),
            Dim::K(k) => SExp::Int(k, None),
        }
    }
}

/// The generator's type universe: `i64` scalars and rank-1/2 arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    S,
    A1(Dim),
    A2(Dim, Dim),
}

/// An associative `i64` operator with an exact neutral element.
#[derive(Clone, Copy, Debug)]
enum AOp {
    Add,
    Mul,
    Min,
    Max,
}

impl AOp {
    fn section(self) -> SExp {
        match self {
            AOp::Add => SExp::OpSection(SBinOp::Add),
            AOp::Mul => SExp::OpSection(SBinOp::Mul),
            AOp::Min => SExp::Var("min".into()),
            AOp::Max => SExp::Var("max".into()),
        }
    }

    /// The neutral element as a *parseable* expression. `i64::MIN` has
    /// no literal form (its absolute value overflows), so it is spelled
    /// `-9223372036854775807 - 1`.
    fn neutral(self) -> SExp {
        match self {
            AOp::Add => SExp::Int(0, None),
            AOp::Mul => SExp::Int(1, None),
            AOp::Min => SExp::Int(i64::MAX, None),
            AOp::Max => SExp::BinOp(
                SBinOp::Sub,
                Box::new(SExp::Int(-i64::MAX, None)),
                Box::new(SExp::Int(1, None)),
            ),
        }
    }
}

const AOPS: [AOp; 4] = [AOp::Add, AOp::Mul, AOp::Min, AOp::Max];

type Env = Vec<(String, Ty)>;

fn loc() -> SrcLoc {
    SrcLoc::new(0, 0)
}

fn apply(f: &str, args: Vec<SExp>) -> SExp {
    SExp::Apply(f.into(), args, loc())
}

fn var(n: &str) -> SExp {
    SExp::Var(n.into())
}

fn int(v: i64) -> SExp {
    SExp::Int(v, None)
}

/// Deterministic program generator.
pub struct Gen {
    rng: StdRng,
    fresh: u32,
}

impl Gen {
    pub fn new(seed: u64) -> Gen {
        Gen { rng: StdRng::seed_from_u64(seed), fresh: 0 }
    }

    /// Generate a `main` definition whose body has roughly `budget`
    /// composite nodes.
    pub fn def(&mut self, budget: usize) -> SDef {
        let env: Env = vec![
            ("n".into(), Ty::S),
            ("m".into(), Ty::S),
            ("c".into(), Ty::S),
            ("xss".into(), Ty::A2(Dim::N, Dim::M)),
            ("ys".into(), Ty::A1(Dim::M)),
        ];
        let ret_ty = self.result_ty();
        let body = self.lets_then(&env, ret_ty, budget);
        SDef {
            name: "main".into(),
            loc: loc(),
            size_binders: vec!["n".into(), "m".into()],
            params: vec![
                (
                    "xss".into(),
                    SType {
                        dims: vec![SDim::Name("n".into()), SDim::Name("m".into())],
                        base: ScalarType::I64,
                    },
                ),
                (
                    "ys".into(),
                    SType { dims: vec![SDim::Name("m".into())], base: ScalarType::I64 },
                ),
                ("c".into(), SType { dims: vec![], base: ScalarType::I64 }),
            ],
            ret: None,
            body,
        }
    }

    fn result_ty(&mut self) -> Ty {
        match self.rng.gen_range(0u32..8) {
            0 | 1 => Ty::S,
            2 | 3 => Ty::A1(Dim::N),
            4 => Ty::A1(Dim::M),
            5 => Ty::A2(Dim::N, Dim::M),
            6 => Ty::A2(Dim::M, Dim::N),
            _ => Ty::A1(self.dim()),
        }
    }

    fn dim(&mut self) -> Dim {
        match self.rng.gen_range(0u32..4) {
            0 => Dim::N,
            1 | 2 => Dim::M,
            _ => Dim::K(self.rng.gen_range(1i64..=3)),
        }
    }

    fn name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    /// A few `let` bindings of random types, then an expression of the
    /// requested type. Occasionally emits a tuple `let`.
    fn lets_then(&mut self, env: &Env, ty: Ty, budget: usize) -> SExp {
        let nlets = self.rng.gen_range(0usize..=2.min(budget / 3));
        let mut env = env.clone();
        let mut binds: Vec<(SPat, SExp)> = Vec::new();
        let mut left = budget;
        for _ in 0..nlets {
            let share = left / 2;
            left -= share;
            if share >= 2 && self.rng.gen_bool(0.15) {
                // Tuple binding of two scalars.
                let a = self.exp(&env, Ty::S, share / 2);
                let b = self.exp(&env, Ty::S, share - share / 2);
                let (na, nb) = (self.name("p"), self.name("q"));
                binds.push((
                    SPat::Tuple(vec![na.clone(), nb.clone()]),
                    SExp::Tuple(vec![a, b]),
                ));
                env.push((na, Ty::S));
                env.push((nb, Ty::S));
            } else {
                let bty = match self.rng.gen_range(0u32..4) {
                    0 => Ty::S,
                    1 => Ty::A1(self.dim()),
                    _ => {
                        let (d1, d2) = (self.dim(), self.dim());
                        if self.rng.gen_bool(0.5) { Ty::A1(d1) } else { Ty::A2(d1, d2) }
                    }
                };
                let rhs = self.exp(&env, bty, share);
                let nm = self.name("v");
                binds.push((SPat::Name(nm.clone()), rhs));
                env.push((nm, bty));
            }
        }
        let mut out = self.exp(&env, ty, left);
        for (pat, rhs) in binds.into_iter().rev() {
            out = SExp::LetIn(pat, Box::new(rhs), Box::new(out), loc());
        }
        out
    }

    /// An expression of type `ty` with the given node budget.
    pub fn exp(&mut self, env: &Env, ty: Ty, budget: usize) -> SExp {
        match ty {
            Ty::S => self.scalar(env, budget),
            Ty::A1(d) => self.arr1(env, d, budget),
            Ty::A2(d1, d2) => self.arr2(env, d1, d2, budget),
        }
    }

    fn vars_of(&mut self, env: &Env, ty: Ty) -> Vec<String> {
        env.iter().filter(|(_, t)| *t == ty).map(|(n, _)| n.clone()).collect()
    }

    /// A size-comparison condition (evaluable by the shape-abstract
    /// simulator).
    fn size_cond(&mut self, _env: &Env) -> SExp {
        let lhs = if self.rng.gen_bool(0.5) { var("n") } else { var("m") };
        let rhs = if self.rng.gen_bool(0.3) {
            if self.rng.gen_bool(0.5) { var("m") } else { var("n") }
        } else {
            int(self.rng.gen_range(1i64..=4))
        };
        let op = if self.rng.gen_bool(0.5) { SBinOp::Le } else { SBinOp::Lt };
        SExp::BinOp(op, Box::new(lhs), Box::new(rhs))
    }

    fn aop(&mut self) -> AOp {
        AOPS[self.rng.gen_range(0usize..AOPS.len())]
    }

    fn scalar_leaf(&mut self, env: &Env) -> SExp {
        let vars = self.vars_of(env, Ty::S);
        if !vars.is_empty() && self.rng.gen_bool(0.6) {
            var(&vars[self.rng.gen_range(0usize..vars.len())])
        } else {
            int(self.rng.gen_range(-9i64..=9))
        }
    }

    fn scalar(&mut self, env: &Env, budget: usize) -> SExp {
        if budget == 0 {
            return self.scalar_leaf(env);
        }
        let b = budget - 1;
        match self.rng.gen_range(0u32..20) {
            // Arithmetic.
            0..=4 => {
                let op = match self.rng.gen_range(0u32..4) {
                    0 | 1 => SBinOp::Add,
                    2 => SBinOp::Sub,
                    _ => SBinOp::Mul,
                };
                let l = self.scalar(env, b / 2);
                let r = self.scalar(env, b - b / 2);
                SExp::BinOp(op, Box::new(l), Box::new(r))
            }
            5 => {
                let f = if self.rng.gen_bool(0.5) { "min" } else { "max" };
                let l = self.scalar(env, b / 2);
                let r = self.scalar(env, b - b / 2);
                apply(f, vec![l, r])
            }
            // Reductions over a rank-1 array.
            6..=9 => {
                let op = self.aop();
                let d = self.dim();
                let arr = self.arr1(env, d, b);
                apply("reduce", vec![op.section(), op.neutral(), arr])
            }
            10 | 11 => {
                let op = self.aop();
                let d = self.dim();
                let x = self.name("x");
                let mut inner = env.clone();
                inner.push((x.clone(), Ty::S));
                let body = self.scalar(&inner, b.min(2));
                let arr = self.arr1(env, d, b.saturating_sub(2));
                apply(
                    "redomap",
                    vec![
                        op.section(),
                        SExp::Lambda(vec![SPat::Name(x)], Box::new(body)),
                        op.neutral(),
                        arr,
                    ],
                )
            }
            12 => {
                let d = self.dim();
                let arr = self.arr1(env, d, b);
                apply("length", vec![arr])
            }
            13 => {
                let c = self.size_cond(env);
                let t = self.scalar(env, b / 2);
                let f = self.scalar(env, b - b / 2);
                SExp::If(Box::new(c), Box::new(t), Box::new(f), loc())
            }
            14 => {
                let acc = self.name("acc");
                let ivar = self.name("i");
                let init = self.scalar(env, b / 2);
                let mut inner = env.clone();
                inner.push((acc.clone(), Ty::S));
                inner.push((ivar.clone(), Ty::S));
                let body = self.scalar(&inner, b - b / 2);
                SExp::Loop {
                    inits: vec![(acc, init)],
                    ivar,
                    bound: Box::new(int(self.rng.gen_range(1i64..=3))),
                    body: Box::new(body),
                    loc: loc(),
                }
            }
            15 => {
                // Index a rank-1 array at 0 (all sizes are >= 1).
                let a1s: Vec<String> = env
                    .iter()
                    .filter(|(_, t)| matches!(t, Ty::A1(_)))
                    .map(|(n, _)| n.clone())
                    .collect();
                if a1s.is_empty() {
                    self.scalar_leaf(env)
                } else {
                    let a = &a1s[self.rng.gen_range(0usize..a1s.len())];
                    SExp::Index(Box::new(var(a)), vec![int(0)])
                }
            }
            16 => {
                let a2s: Vec<String> = env
                    .iter()
                    .filter(|(_, t)| matches!(t, Ty::A2(..)))
                    .map(|(n, _)| n.clone())
                    .collect();
                if a2s.is_empty() {
                    self.scalar_leaf(env)
                } else {
                    let a = &a2s[self.rng.gen_range(0usize..a2s.len())];
                    SExp::Index(Box::new(var(a)), vec![int(0), int(0)])
                }
            }
            _ => self.scalar_leaf(env),
        }
    }

    fn arr1_leaf(&mut self, env: &Env, d: Dim) -> SExp {
        let vars = self.vars_of(env, Ty::A1(d));
        if !vars.is_empty() && self.rng.gen_bool(0.6) {
            var(&vars[self.rng.gen_range(0usize..vars.len())])
        } else if self.rng.gen_bool(0.5) {
            apply("iota", vec![d.exp()])
        } else {
            let v = self.scalar_leaf(env);
            apply("replicate", vec![d.exp(), v])
        }
    }

    fn arr1(&mut self, env: &Env, d: Dim, budget: usize) -> SExp {
        if budget == 0 {
            return self.arr1_leaf(env, d);
        }
        let b = budget - 1;
        match self.rng.gen_range(0u32..14) {
            // map (\x -> scalar) over a rank-1 array of the same size.
            0..=3 => {
                let x = self.name("x");
                let mut inner = env.clone();
                inner.push((x.clone(), Ty::S));
                let body = self.scalar(&inner, b / 2);
                let arr = self.arr1(env, d, b - b / 2);
                apply("map", vec![SExp::Lambda(vec![SPat::Name(x)], Box::new(body)), arr])
            }
            4 => {
                let x = self.name("x");
                let y = self.name("y");
                let mut inner = env.clone();
                inner.push((x.clone(), Ty::S));
                inner.push((y.clone(), Ty::S));
                let body = self.scalar(&inner, b / 3);
                let a = self.arr1(env, d, b / 3);
                let bb = self.arr1(env, d, b - 2 * (b / 3));
                apply(
                    "map2",
                    vec![
                        SExp::Lambda(vec![SPat::Name(x), SPat::Name(y)], Box::new(body)),
                        a,
                        bb,
                    ],
                )
            }
            5 | 6 => {
                let op = self.aop();
                let arr = self.arr1(env, d, b);
                apply("scan", vec![op.section(), op.neutral(), arr])
            }
            // The key nested-parallel shape: map a row-consuming lambda
            // over a rank-2 array (inner reduce/scan nests land here).
            7..=9 => {
                let d2 = self.dim();
                let row = self.name("r");
                let mut inner = env.clone();
                inner.push((row.clone(), Ty::A1(d2)));
                let body = self.scalar(&inner, b / 2);
                let a2 = self.arr2(env, d, d2, b - b / 2);
                apply("map", vec![SExp::Lambda(vec![SPat::Name(row)], Box::new(body)), a2])
            }
            10 => {
                let c = self.size_cond(env);
                let t = self.arr1(env, d, b / 2);
                let f = self.arr1(env, d, b - b / 2);
                SExp::If(Box::new(c), Box::new(t), Box::new(f), loc())
            }
            11 => {
                let acc = self.name("acc");
                let ivar = self.name("i");
                let init = self.arr1(env, d, b / 2);
                let mut inner = env.clone();
                inner.push((acc.clone(), Ty::A1(d)));
                inner.push((ivar.clone(), Ty::S));
                let body = self.arr1(&inner, d, b - b / 2);
                SExp::Loop {
                    inits: vec![(acc, init)],
                    ivar,
                    bound: Box::new(int(self.rng.gen_range(1i64..=3))),
                    body: Box::new(body),
                    loc: loc(),
                }
            }
            12 => {
                let v = self.scalar(env, b);
                apply("replicate", vec![d.exp(), v])
            }
            _ => self.arr1_leaf(env, d),
        }
    }

    fn arr2_leaf(&mut self, env: &Env, d1: Dim, d2: Dim) -> SExp {
        let vars = self.vars_of(env, Ty::A2(d1, d2));
        if !vars.is_empty() && self.rng.gen_bool(0.7) {
            var(&vars[self.rng.gen_range(0usize..vars.len())])
        } else {
            let row = self.arr1_leaf(env, d2);
            apply("replicate", vec![d1.exp(), row])
        }
    }

    fn arr2(&mut self, env: &Env, d1: Dim, d2: Dim, budget: usize) -> SExp {
        if budget == 0 {
            return self.arr2_leaf(env, d1, d2);
        }
        let b = budget - 1;
        match self.rng.gen_range(0u32..10) {
            // Shape-preserving map over the rows.
            0..=2 => {
                let row = self.name("r");
                let mut inner = env.clone();
                inner.push((row.clone(), Ty::A1(d2)));
                let body = self.arr1(&inner, d2, b / 2);
                let a2 = self.arr2(env, d1, d2, b - b / 2);
                apply("map", vec![SExp::Lambda(vec![SPat::Name(row)], Box::new(body)), a2])
            }
            // Build rows from an index space.
            3 | 4 => {
                let i = self.name("i");
                let mut inner = env.clone();
                inner.push((i.clone(), Ty::S));
                let body = self.arr1(&inner, d2, b);
                apply(
                    "map",
                    vec![
                        SExp::Lambda(vec![SPat::Name(i)], Box::new(body)),
                        apply("iota", vec![d1.exp()]),
                    ],
                )
            }
            5 => {
                let a = self.arr2(env, d2, d1, b);
                apply("transpose", vec![a])
            }
            6 => {
                let a = self.arr2(env, d2, d1, b);
                apply("rearrange", vec![SExp::Tuple(vec![int(1), int(0)]), a])
            }
            7 => {
                let row = self.arr1(env, d2, b);
                apply("replicate", vec![d1.exp(), row])
            }
            8 => {
                let c = self.size_cond(env);
                let t = self.arr2(env, d1, d2, b / 2);
                let f = self.arr2(env, d1, d2, b - b / 2);
                SExp::If(Box::new(c), Box::new(t), Box::new(f), loc())
            }
            _ => self.arr2_leaf(env, d1, d2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_elaborate() {
        for seed in 0..200u64 {
            let mut g = Gen::new(seed);
            let def = g.def(10);
            let sprog = SProgram { defs: vec![def] };
            let src = flat_lang::pretty::program(&sprog);
            // pretty output must parse back...
            let reparsed = flat_lang::parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: unparseable output: {e}\n{src}"));
            // ...and elaborate + typecheck.
            flat_lang::compile_sprogram(&reparsed, "main")
                .unwrap_or_else(|e| panic!("seed {seed}: does not elaborate: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = Gen::new(42).def(12);
        let d2 = Gen::new(42).def(12);
        assert_eq!(d1, d2);
    }
}
