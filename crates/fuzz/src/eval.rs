//! An independent tree-walking interpreter for the surface language.
//!
//! This is the oracle's reference leg: it shares *no* code with the
//! elaborator, the IR interpreter, or the flattener, so agreement
//! between this evaluator and the compiled pipeline is meaningful
//! evidence. It only covers what the fuzzer generates — `i64`/`bool`
//! scalars, rank-1/2 `i64` arrays, tuples, the SOAC builtins, `loop`,
//! `if`, `let`, and full-rank indexing — and reports anything else as
//! an error rather than guessing.

use flat_ir::value::{ArrayVal, Buffer};
use flat_ir::{Const, Value};
use flat_lang::syntax::*;
use std::collections::HashMap;

/// A surface value: scalars, nested arrays (rank encoded by nesting),
/// and tuples.
#[derive(Clone, Debug, PartialEq)]
pub enum V {
    I(i64),
    B(bool),
    Arr(Vec<V>),
    Tup(Vec<V>),
}

pub type EvalResult<T> = Result<T, String>;

type Env = HashMap<String, V>;

fn as_i(v: &V) -> EvalResult<i64> {
    match v {
        V::I(x) => Ok(*x),
        other => Err(format!("expected i64, got {other:?}")),
    }
}

fn as_b(v: &V) -> EvalResult<bool> {
    match v {
        V::B(x) => Ok(*x),
        other => Err(format!("expected bool, got {other:?}")),
    }
}

fn as_arr(v: V) -> EvalResult<Vec<V>> {
    match v {
        V::Arr(xs) => Ok(xs),
        other => Err(format!("expected array, got {other:?}")),
    }
}

/// Evaluate `def` applied to the given arguments (already paired with
/// the parameter names; size binders are bound as `i64` scalars).
pub fn eval_def(def: &SDef, sizes: &[(String, i64)], args: &[(String, V)]) -> EvalResult<V> {
    let mut env: Env = HashMap::new();
    for (n, v) in sizes {
        env.insert(n.clone(), V::I(*v));
    }
    for (n, v) in args {
        env.insert(n.clone(), v.clone());
    }
    eval(&env, &def.body)
}

fn eval(env: &Env, e: &SExp) -> EvalResult<V> {
    match e {
        SExp::Var(n) => env
            .get(n)
            .cloned()
            .ok_or_else(|| format!("unbound variable {n}")),
        SExp::Int(v, _) => Ok(V::I(*v)),
        SExp::Float(..) => Err("float literals are outside the fuzz fragment".into()),
        SExp::Bool(b) => Ok(V::B(*b)),
        SExp::Tuple(es) => Ok(V::Tup(es.iter().map(|x| eval(env, x)).collect::<EvalResult<_>>()?)),
        SExp::Neg(x) => Ok(V::I(as_i(&eval(env, x)?)?.wrapping_neg())),
        SExp::Not(x) => Ok(V::B(!as_b(&eval(env, x)?)?)),
        SExp::BinOp(op, l, r) => {
            let lv = eval(env, l)?;
            let rv = eval(env, r)?;
            binop(*op, &lv, &rv)
        }
        SExp::If(c, t, f, _) => {
            if as_b(&eval(env, c)?)? {
                eval(env, t)
            } else {
                eval(env, f)
            }
        }
        SExp::LetIn(pat, rhs, cont, _) => {
            let v = eval(env, rhs)?;
            let mut env2 = env.clone();
            bind_pat(&mut env2, pat, v)?;
            eval(&env2, cont)
        }
        SExp::Loop { inits, ivar, bound, body, .. } => {
            let b = as_i(&eval(env, bound)?)?;
            let mut accs: Vec<(String, V)> = inits
                .iter()
                .map(|(n, e0)| Ok((n.clone(), eval(env, e0)?)))
                .collect::<EvalResult<_>>()?;
            for i in 0..b.max(0) {
                let mut env2 = env.clone();
                env2.insert(ivar.clone(), V::I(i));
                for (n, v) in &accs {
                    env2.insert(n.clone(), v.clone());
                }
                let out = eval(&env2, body)?;
                if accs.len() == 1 {
                    accs[0].1 = out;
                } else {
                    match out {
                        V::Tup(vs) if vs.len() == accs.len() => {
                            for ((_, slot), v) in accs.iter_mut().zip(vs) {
                                *slot = v;
                            }
                        }
                        other => {
                            return Err(format!(
                                "loop body arity mismatch: {} accumulators, got {other:?}",
                                accs.len()
                            ))
                        }
                    }
                }
            }
            if accs.len() == 1 {
                Ok(accs.pop().unwrap().1)
            } else {
                Ok(V::Tup(accs.into_iter().map(|(_, v)| v).collect()))
            }
        }
        SExp::Index(base, idxs) => {
            let mut v = eval(env, base)?;
            for ix in idxs {
                let i = as_i(&eval(env, ix)?)?;
                let xs = as_arr(v)?;
                if i < 0 || i as usize >= xs.len() {
                    return Err(format!("index {i} out of bounds (len {})", xs.len()));
                }
                v = xs[i as usize].clone();
            }
            Ok(v)
        }
        SExp::Lambda(..) | SExp::OpSection(_) => {
            Err("naked function value outside application position".into())
        }
        SExp::Apply(f, args, _) => builtin(env, f, args),
    }
}

fn bind_pat(env: &mut Env, pat: &SPat, v: V) -> EvalResult<()> {
    match pat {
        SPat::Name(n) => {
            env.insert(n.clone(), v);
            Ok(())
        }
        SPat::Tuple(ns) => match v {
            V::Tup(vs) if vs.len() == ns.len() => {
                for (n, x) in ns.iter().zip(vs) {
                    env.insert(n.clone(), x);
                }
                Ok(())
            }
            other => Err(format!("tuple pattern of {} names against {other:?}", ns.len())),
        },
    }
}

fn binop(op: SBinOp, l: &V, r: &V) -> EvalResult<V> {
    use SBinOp::*;
    match op {
        And => return Ok(V::B(as_b(l)? && as_b(r)?)),
        Or => return Ok(V::B(as_b(l)? || as_b(r)?)),
        Eq => return Ok(V::B(l == r)),
        Neq => return Ok(V::B(l != r)),
        _ => {}
    }
    let (a, b) = (as_i(l)?, as_i(r)?);
    Ok(match op {
        Add => V::I(a.wrapping_add(b)),
        Sub => V::I(a.wrapping_sub(b)),
        Mul => V::I(a.wrapping_mul(b)),
        Div => {
            if b == 0 {
                return Err("division by zero".into());
            }
            V::I(a.wrapping_div(b))
        }
        Rem => {
            if b == 0 {
                return Err("remainder by zero".into());
            }
            V::I(a.wrapping_rem(b))
        }
        Pow => V::I(a.wrapping_pow(b.max(0) as u32)),
        Lt => V::B(a < b),
        Le => V::B(a <= b),
        Gt => V::B(a > b),
        Ge => V::B(a >= b),
        And | Or | Eq | Neq => unreachable!(),
    })
}

/// Apply a function-position expression (lambda, operator section, or
/// `min`/`max`) to evaluated arguments.
fn apply_fn(env: &Env, f: &SExp, args: Vec<V>) -> EvalResult<V> {
    match f {
        SExp::Lambda(pats, body) => {
            if pats.len() != args.len() {
                return Err(format!(
                    "lambda of {} parameters applied to {} arguments",
                    pats.len(),
                    args.len()
                ));
            }
            let mut env2 = env.clone();
            for (p, a) in pats.iter().zip(args) {
                bind_pat(&mut env2, p, a)?;
            }
            eval(&env2, body)
        }
        SExp::OpSection(op) => {
            if args.len() != 2 {
                return Err(format!("operator section applied to {} arguments", args.len()));
            }
            binop(*op, &args[0], &args[1])
        }
        SExp::Var(n) if n == "min" || n == "max" => {
            let (a, b) = (as_i(&args[0])?, as_i(&args[1])?);
            Ok(V::I(if n == "min" { a.min(b) } else { a.max(b) }))
        }
        other => Err(format!("unsupported function position: {other:?}")),
    }
}

fn builtin(env: &Env, f: &str, args: &[SExp]) -> EvalResult<V> {
    match f {
        "map" | "map2" | "map3" | "map4" => {
            let (fe, arrs) = args
                .split_first()
                .ok_or_else(|| format!("{f} needs a function"))?;
            let cols: Vec<Vec<V>> = arrs
                .iter()
                .map(|a| as_arr(eval(env, a)?))
                .collect::<EvalResult<_>>()?;
            if cols.is_empty() {
                return Err(format!("{f} needs at least one array"));
            }
            let len = cols[0].len();
            if cols.iter().any(|c| c.len() != len) {
                return Err(format!("{f} over arrays of different lengths"));
            }
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                let row: Vec<V> = cols.iter().map(|c| c[i].clone()).collect();
                out.push(apply_fn(env, fe, row)?);
            }
            Ok(V::Arr(out))
        }
        "reduce" | "scan" => {
            let [op, ne, arr] = args else {
                return Err(format!("{f} takes op, neutral element, array"));
            };
            let mut acc = eval(env, ne)?;
            let xs = as_arr(eval(env, arr)?)?;
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                acc = apply_fn(env, op, vec![acc, x])?;
                if f == "scan" {
                    out.push(acc.clone());
                }
            }
            if f == "scan" {
                Ok(V::Arr(out))
            } else {
                Ok(acc)
            }
        }
        "redomap" | "scanomap" => {
            let [red, mapf, ne, arr] = args else {
                return Err(format!("{f} takes red-op, map-fn, neutral element, array"));
            };
            let mut acc = eval(env, ne)?;
            let xs = as_arr(eval(env, arr)?)?;
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                let mapped = apply_fn(env, mapf, vec![x])?;
                acc = apply_fn(env, red, vec![acc, mapped])?;
                if f == "scanomap" {
                    out.push(acc.clone());
                }
            }
            if f == "scanomap" {
                Ok(V::Arr(out))
            } else {
                Ok(acc)
            }
        }
        "replicate" => {
            let [n, v] = args else {
                return Err("replicate takes a count and a value".into());
            };
            let n = as_i(&eval(env, n)?)?;
            let v = eval(env, v)?;
            Ok(V::Arr(vec![v; n.max(0) as usize]))
        }
        "iota" => {
            let [n] = args else {
                return Err("iota takes a count".into());
            };
            let n = as_i(&eval(env, n)?)?;
            Ok(V::Arr((0..n.max(0)).map(V::I).collect()))
        }
        "length" => {
            let [a] = args else {
                return Err("length takes an array".into());
            };
            Ok(V::I(as_arr(eval(env, a)?)?.len() as i64))
        }
        "transpose" => {
            let [a] = args else {
                return Err("transpose takes an array".into());
            };
            transpose(as_arr(eval(env, a)?)?)
        }
        "rearrange" => {
            let [perm, a] = args else {
                return Err("rearrange takes a permutation and an array".into());
            };
            let dims: Vec<i64> = match perm {
                SExp::Tuple(es) => es
                    .iter()
                    .map(|e| match e {
                        SExp::Int(v, _) => Ok(*v),
                        other => Err(format!("non-literal permutation entry {other:?}")),
                    })
                    .collect::<EvalResult<_>>()?,
                SExp::Int(v, _) => vec![*v],
                other => return Err(format!("bad permutation {other:?}")),
            };
            let arr = as_arr(eval(env, a)?)?;
            match dims.as_slice() {
                [0] => Ok(V::Arr(arr)),
                [0, 1] => Ok(V::Arr(arr)),
                [1, 0] => transpose(arr),
                other => Err(format!("unsupported permutation {other:?}")),
            }
        }
        "min" | "max" => {
            let [a, b] = args else {
                return Err(format!("{f} takes two arguments"));
            };
            let (x, y) = (as_i(&eval(env, a)?)?, as_i(&eval(env, b)?)?);
            Ok(V::I(if f == "min" { x.min(y) } else { x.max(y) }))
        }
        other => Err(format!("call to unsupported function `{other}`")),
    }
}

fn transpose(rows: Vec<V>) -> EvalResult<V> {
    let rows: Vec<Vec<V>> = rows.into_iter().map(as_arr).collect::<EvalResult<_>>()?;
    let inner = rows.first().map_or(0, |r| r.len());
    if rows.iter().any(|r| r.len() != inner) {
        return Err("transpose of a ragged array".into());
    }
    let mut out = vec![Vec::with_capacity(rows.len()); inner];
    for row in &rows {
        for (j, v) in row.iter().enumerate() {
            out[j].push(v.clone());
        }
    }
    Ok(V::Arr(out.into_iter().map(V::Arr).collect()))
}

/// Convert a surface value into the IR's [`Value`] representation for
/// bitwise comparison with pipeline results. Tuples flatten into
/// multiple results, mirroring the elaborator.
pub fn to_values(v: &V) -> EvalResult<Vec<Value>> {
    match v {
        V::Tup(vs) => {
            let mut out = Vec::new();
            for x in vs {
                out.extend(to_values(x)?);
            }
            Ok(out)
        }
        other => Ok(vec![to_value(other)?]),
    }
}

fn to_value(v: &V) -> EvalResult<Value> {
    match v {
        V::I(x) => Ok(Value::i64_(*x)),
        V::B(b) => Ok(Value::Scalar(Const::Bool(*b))),
        V::Arr(xs) => {
            // Rank 1 of scalars, or rank 2 of equal-length scalar rows.
            if xs.iter().all(|x| matches!(x, V::I(_))) {
                let data: Vec<i64> = xs.iter().map(|x| as_i(x).unwrap()).collect();
                return Ok(Value::Array(ArrayVal::new(
                    vec![data.len() as i64],
                    Buffer::I64(data),
                )));
            }
            let rows: Vec<&Vec<V>> = xs
                .iter()
                .map(|x| match x {
                    V::Arr(r) => Ok(r),
                    other => Err(format!("mixed-rank array: {other:?}")),
                })
                .collect::<EvalResult<_>>()?;
            let m = rows.first().map_or(0, |r| r.len());
            let mut data = Vec::with_capacity(rows.len() * m);
            for r in &rows {
                if r.len() != m {
                    return Err("ragged rank-2 array".into());
                }
                for x in r.iter() {
                    data.push(as_i(x)?);
                }
            }
            Ok(Value::Array(ArrayVal::new(
                vec![rows.len() as i64, m as i64],
                Buffer::I64(data),
            )))
        }
        V::Tup(_) => Err("nested tuple has no IR value form".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_lang::parse_program;

    fn run(src: &str, n: i64, m: i64, xss: Vec<Vec<i64>>, ys: Vec<i64>, c: i64) -> Vec<Value> {
        let p = parse_program(src).unwrap();
        let def = p.find("main").unwrap();
        let xv = V::Arr(xss.into_iter().map(|r| V::Arr(r.into_iter().map(V::I).collect())).collect());
        let yv = V::Arr(ys.into_iter().map(V::I).collect());
        let out = eval_def(
            def,
            &[("n".into(), n), ("m".into(), m)],
            &[("xss".into(), xv), ("ys".into(), yv), ("c".into(), V::I(c))],
        )
        .unwrap();
        to_values(&out).unwrap()
    }

    const SIG: &str = "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =";

    #[test]
    fn evaluates_nested_map_reduce() {
        let out = run(
            &format!("{SIG} map (\\r -> reduce (+) 0 r) xss"),
            2,
            3,
            vec![vec![1, 2, 3], vec![4, 5, 6]],
            vec![0, 0, 0],
            0,
        );
        assert_eq!(out, vec![Value::i64_vec(vec![6, 15])]);
    }

    #[test]
    fn evaluates_scan_loop_and_if() {
        let out = run(
            &format!(
                "{SIG} let s = scan (+) 0 ys in loop (acc = s) for i < 2 do map (\\x -> x + i) acc"
            ),
            1,
            3,
            vec![vec![0, 0, 0]],
            vec![1, 2, 3],
            0,
        );
        // scan: [1,3,6]; +0 then +1 elementwise.
        assert_eq!(out, vec![Value::i64_vec(vec![2, 4, 7])]);
        let out = run(
            &format!("{SIG} if n <= 2 then c else c * 2"),
            1,
            1,
            vec![vec![0]],
            vec![0],
            7,
        );
        assert_eq!(out, vec![Value::i64_(7)]);
    }

    #[test]
    fn agrees_with_the_compiled_interpreter() {
        use flat_ir::interp::{run_program, Thresholds};
        let src = format!(
            "{SIG} let zss = transpose (map (\\r -> scan (*) 1 r) xss) in map (\\r -> redomap (+) (\\x -> x * c) 0 r) zss"
        );
        let n = 2;
        let m = 3;
        let xss = vec![vec![1, -2, 3], vec![4, 5, -6]];
        let ys = vec![9, 9, 9];
        let c = 5;
        let reference = run(&src, n, m, xss.clone(), ys.clone(), c);

        let prog = flat_lang::compile(&src, "main").unwrap();
        let flat: Vec<i64> = xss.iter().flatten().copied().collect();
        let args = vec![
            Value::i64_(n),
            Value::i64_(m),
            Value::Array(ArrayVal::new(vec![n, m], Buffer::I64(flat))),
            Value::i64_vec(ys),
            Value::i64_(c),
        ];
        let got = run_program(&prog, &args, &Thresholds::new()).unwrap();
        assert_eq!(reference, got);
    }
}
