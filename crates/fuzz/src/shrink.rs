//! Greedy delta-debugging shrinker over the surface AST.
//!
//! Candidates are single-step *reductions* of the failing program's
//! body: a node replaced by one of its children, a branch of an `if`,
//! the continuation of a `let`, or a literal simplified toward `0`.
//! Candidate validity is delegated entirely to the caller's predicate
//! (typically "still elaborates AND still reproduces the same failure
//! stage"), so the shrinker needs no typing judgment of its own —
//! ill-typed candidates simply fail the predicate and are skipped.

use flat_lang::syntax::*;

/// Shrink `def`'s body while `still_failing` accepts the candidate.
/// Greedy first-improvement search, bounded by `max_trials` predicate
/// evaluations (each evaluation typically re-runs the whole oracle).
pub fn shrink_def(
    def: &SDef,
    still_failing: &mut dyn FnMut(&SDef) -> bool,
    max_trials: usize,
) -> SDef {
    let mut best = def.clone();
    let mut trials = 0;
    'outer: loop {
        for cand in candidates(&best.body) {
            if trials >= max_trials {
                break 'outer;
            }
            trials += 1;
            let mut next = best.clone();
            next.body = cand;
            if still_failing(&next) {
                best = next;
                continue 'outer; // restart from the smaller program
            }
        }
        break; // no candidate reproduced the failure — local minimum
    }
    best
}

/// Number of AST nodes — the size measure shrinking drives down.
pub fn size(e: &SExp) -> usize {
    1 + children(e).iter().map(|c| size(c)).sum::<usize>()
}

fn children(e: &SExp) -> Vec<&SExp> {
    match e {
        SExp::Var(_) | SExp::Int(..) | SExp::Float(..) | SExp::Bool(_) | SExp::OpSection(_) => {
            vec![]
        }
        SExp::Tuple(es) => es.iter().collect(),
        SExp::BinOp(_, l, r) => vec![l, r],
        SExp::Neg(x) | SExp::Not(x) => vec![x],
        SExp::Apply(_, args, _) => args.iter().collect(),
        SExp::Lambda(_, b) => vec![b],
        SExp::If(c, t, f, _) => vec![c, t, f],
        SExp::LetIn(_, rhs, cont, _) => vec![rhs, cont],
        SExp::Loop { inits, bound, body, .. } => {
            let mut v: Vec<&SExp> = inits.iter().map(|(_, e)| e).collect();
            v.push(bound);
            v.push(body);
            v
        }
        SExp::Index(b, idxs) => {
            let mut v = vec![&**b];
            v.extend(idxs.iter());
            v
        }
    }
}

/// All single-step reductions of `e`: root-level replacements first
/// (they shrink fastest), then the same recursively in each child
/// position.
fn candidates(e: &SExp) -> Vec<SExp> {
    let mut out: Vec<SExp> = Vec::new();

    // Root reductions: replace the node by a child (skip function
    // values and obvious non-starters; the validity predicate catches
    // anything type-incorrect that slips through).
    match e {
        SExp::BinOp(_, l, r) => {
            out.push((**l).clone());
            out.push((**r).clone());
        }
        SExp::Neg(x) | SExp::Not(x) => out.push((**x).clone()),
        SExp::If(_, t, f, _) => {
            out.push((**t).clone());
            out.push((**f).clone());
        }
        SExp::LetIn(_, rhs, cont, _) => {
            out.push((**cont).clone());
            out.push((**rhs).clone());
        }
        SExp::Loop { inits, body, .. } => {
            for (_, init) in inits {
                out.push(init.clone());
            }
            out.push((**body).clone());
        }
        SExp::Apply(_, args, _) => {
            for a in args {
                if !matches!(a, SExp::Lambda(..) | SExp::OpSection(_)) {
                    out.push(a.clone());
                }
            }
        }
        SExp::Index(b, _) => out.push((**b).clone()),
        SExp::Tuple(es) => out.extend(es.iter().cloned()),
        SExp::Int(v, suf) if *v != 0 => {
            out.push(SExp::Int(0, *suf));
            if *v != 1 {
                out.push(SExp::Int(1, *suf));
            }
        }
        _ => {}
    }

    // One child rewritten, everything else kept.
    match e {
        SExp::BinOp(op, l, r) => {
            for c in candidates(l) {
                out.push(SExp::BinOp(*op, Box::new(c), r.clone()));
            }
            for c in candidates(r) {
                out.push(SExp::BinOp(*op, l.clone(), Box::new(c)));
            }
        }
        SExp::Neg(x) => out.extend(candidates(x).into_iter().map(|c| SExp::Neg(Box::new(c)))),
        SExp::Not(x) => out.extend(candidates(x).into_iter().map(|c| SExp::Not(Box::new(c)))),
        SExp::Tuple(es) => {
            for (i, x) in es.iter().enumerate() {
                for c in candidates(x) {
                    let mut es2 = es.clone();
                    es2[i] = c;
                    out.push(SExp::Tuple(es2));
                }
            }
        }
        SExp::Apply(f, args, loc) => {
            for (i, a) in args.iter().enumerate() {
                for c in candidates(a) {
                    let mut args2 = args.clone();
                    args2[i] = c;
                    out.push(SExp::Apply(f.clone(), args2, *loc));
                }
            }
        }
        SExp::Lambda(pats, b) => {
            for c in candidates(b) {
                out.push(SExp::Lambda(pats.clone(), Box::new(c)));
            }
        }
        SExp::If(cnd, t, f, loc) => {
            for c in candidates(cnd) {
                out.push(SExp::If(Box::new(c), t.clone(), f.clone(), *loc));
            }
            for c in candidates(t) {
                out.push(SExp::If(cnd.clone(), Box::new(c), f.clone(), *loc));
            }
            for c in candidates(f) {
                out.push(SExp::If(cnd.clone(), t.clone(), Box::new(c), *loc));
            }
        }
        SExp::LetIn(p, rhs, cont, loc) => {
            for c in candidates(rhs) {
                out.push(SExp::LetIn(p.clone(), Box::new(c), cont.clone(), *loc));
            }
            for c in candidates(cont) {
                out.push(SExp::LetIn(p.clone(), rhs.clone(), Box::new(c), *loc));
            }
        }
        SExp::Loop { inits, ivar, bound, body, loc } => {
            for (i, (n, init)) in inits.iter().enumerate() {
                for c in candidates(init) {
                    let mut inits2 = inits.clone();
                    inits2[i] = (n.clone(), c);
                    out.push(SExp::Loop {
                        inits: inits2,
                        ivar: ivar.clone(),
                        bound: bound.clone(),
                        body: body.clone(),
                        loc: *loc,
                    });
                }
            }
            for c in candidates(body) {
                out.push(SExp::Loop {
                    inits: inits.clone(),
                    ivar: ivar.clone(),
                    bound: bound.clone(),
                    body: Box::new(c),
                    loc: *loc,
                });
            }
        }
        SExp::Index(b, idxs) => {
            for c in candidates(b) {
                out.push(SExp::Index(Box::new(c), idxs.clone()));
            }
        }
        _ => {}
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_lang::parse_program;

    fn main_def(body: &str) -> SDef {
        let src = format!(
            "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =\n  {body}"
        );
        parse_program(&src).unwrap().find("main").unwrap().clone()
    }

    #[test]
    fn shrinks_to_the_failing_core() {
        // Predicate: "the program mentions a reduce over ys". The noise
        // around it must shrink away.
        let def = main_def(
            "let v1 = map (\\x -> x * 2 + c) ys in \
             (reduce (+) 0 ys) + length v1 + (if n <= 2 then 5 else 7)",
        );
        let mut pred = |d: &SDef| {
            let txt = flat_lang::pretty::def(d);
            // Candidate must still elaborate (validity) and still
            // contain the "bug" trigger.
            let ok = flat_lang::parse_program(&txt)
                .ok()
                .and_then(|p| flat_lang::compile_sprogram(&p, "main").ok())
                .is_some();
            ok && txt.contains("reduce")
        };
        let orig_size = size(&def.body);
        let small = shrink_def(&def, &mut pred, 3000);
        let new_size = size(&small.body);
        assert!(
            new_size < orig_size / 2,
            "expected substantial shrink: {orig_size} -> {new_size}\n{}",
            flat_lang::pretty::def(&small)
        );
        assert!(flat_lang::pretty::def(&small).contains("reduce"));
    }

    #[test]
    fn shrinking_never_accepts_a_non_failing_candidate() {
        let def = main_def("reduce (+) 0 ys");
        let mut pred = |_: &SDef| false; // nothing reproduces
        let same = shrink_def(&def, &mut pred, 100);
        assert_eq!(same.body, def.body);
    }
}
