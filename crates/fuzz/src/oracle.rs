//! The differential oracle: run one program through the whole pipeline
//! and check four-way agreement under *every* reachable threshold path.
//!
//! Legs of the comparison, all bitwise (`i64` wrapping arithmetic makes
//! flattening's reassociation exact):
//!
//! 1. **Source interpretation** — the independent evaluator in
//!    [`crate::eval`] applied to the parsed surface program.
//! 2. **Post-elaboration IR** — [`flat_ir::interp::run_program`] on the
//!    elaborated, type-checked program.
//! 3. **Post-fusion IR** — the same after [`flat_ir::fusion`].
//! 4. **Flattened versions** — for each flattening mode, the oracle
//!    walks the threshold branching tree, derives an assignment that
//!    *forces* every distinct version path (threshold `0` forces a
//!    guard to take its sufficient-parallelism branch, `i64::MAX`
//!    forces the other), and runs the multi-versioned program under
//!    each assignment. Every forced version must reproduce the source
//!    result exactly — the paper's central equivalence claim. The GPU
//!    simulator runs alongside each version and its recorded path must
//!    match the interpreter's ([`gpu_sim::sim::path_signature`]).
//!
//! Three further legs ride along: a static **verifier** pass after
//! every transformation (`verify: bool`), **real execution**
//! (`exec: bool`) — the `flat-exec` multithreaded runtime runs every
//! forced path *and* the live-dispatched path on 2 threads with a tiny
//! grain size (so even the fuzzer's small inputs split into several
//! parallel tasks), and must reproduce the reference bitwise with a
//! path signature the interpreter (forced) or the threshold branching
//! tree (live) agrees with — and the **bytecode VM** (`vm: bool`),
//! which compiles each flattened version to `flat-vm`'s register
//! bytecode and holds it to exactly the same bar under the same
//! configuration.

use crate::eval::{self, V};
use flat_ir::interp::{Interp, Thresholds};
use flat_ir::value::{ArrayVal, Buffer};
use flat_ir::{ThresholdId, Value};
use flat_lang::syntax::{SDef, SProgram};
use gpu_sim::DeviceSpec;
use incflat::{FlattenConfig, ThresholdRegistry};
use rand::prelude::*;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Concrete inputs for the fixed fuzz signature
/// `main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzInputs {
    pub n: i64,
    pub m: i64,
    pub xss: Vec<Vec<i64>>,
    pub ys: Vec<i64>,
    pub c: i64,
    /// Seed the data was derived from — recorded so corpus files can
    /// regenerate the exact inputs from their header alone.
    pub data_seed: u64,
}

impl FuzzInputs {
    /// Deterministically fill the inputs from sizes and a data seed
    /// (the recipe corpus files reference in their headers).
    pub fn from_seed(n: i64, m: i64, data_seed: u64) -> FuzzInputs {
        assert!(n >= 1 && m >= 1, "fuzz sizes must be positive");
        let mut rng = StdRng::seed_from_u64(data_seed);
        let xss = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(-9i64..=9)).collect())
            .collect();
        let ys = (0..m).map(|_| rng.gen_range(-9i64..=9)).collect();
        let c = rng.gen_range(-4i64..=4);
        FuzzInputs { n, m, xss, ys, c, data_seed }
    }

    /// IR-level argument list: size binders first (as `i64`), then the
    /// declared parameters — the calling convention of
    /// [`flat_lang::compile`].
    pub fn ir_args(&self) -> Vec<Value> {
        let flat: Vec<i64> = self.xss.iter().flatten().copied().collect();
        vec![
            Value::i64_(self.n),
            Value::i64_(self.m),
            Value::Array(ArrayVal::new(vec![self.n, self.m], Buffer::I64(flat))),
            Value::i64_vec(self.ys.clone()),
            Value::i64_(self.c),
        ]
    }

    fn surface_args(&self) -> Vec<(String, V)> {
        let xv = V::Arr(
            self.xss
                .iter()
                .map(|r| V::Arr(r.iter().copied().map(V::I).collect()))
                .collect(),
        );
        let yv = V::Arr(self.ys.iter().copied().map(V::I).collect());
        vec![
            ("xss".into(), xv),
            ("ys".into(), yv),
            ("c".into(), V::I(self.c)),
        ]
    }
}

/// A classified oracle failure: which pipeline stage disagreed (or
/// died), and how.
#[derive(Clone, Debug)]
pub struct Failure {
    pub stage: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// What a clean oracle run established.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Distinct `path_signature`s observed while forcing versions of
    /// the *incremental* flattening (the branching tree under test).
    pub path_signatures: Vec<Vec<(u32, bool)>>,
    /// Total forced version runs across all modes.
    pub versions_checked: usize,
}

impl OracleReport {
    pub fn distinct_paths(&self) -> usize {
        self.path_signatures.len()
    }
}

/// A test hook mutating the elaborated IR before the downstream stages.
pub type ProgramMutation = Box<dyn Fn(&mut flat_ir::Program)>;

/// The differential oracle. `mutate_post_elab` is a test hook: it is
/// applied to the elaborated IR before the downstream stages, letting
/// tests prove the oracle catches a deliberately broken transformation.
pub struct Oracle {
    pub mutate_post_elab: Option<ProgramMutation>,
    /// Cap on enumerated threshold assignments per mode (the tree can
    /// be exponential in pathological nests).
    pub max_assignments: usize,
    /// Fifth leg: statically verify the IR after elaboration, fusion,
    /// and each flattening with `flat-verify` (error-severity
    /// diagnostics fail the oracle; warnings are ignored). On by
    /// default — interpretation checks *values*, this checks the IR
    /// invariants a lucky input might never exercise.
    pub verify: bool,
    /// Sixth leg: run every forced path and the live-dispatched path on
    /// the real multithreaded executor (`flat-exec`) and require
    /// bitwise agreement with the reference plus a consistent path
    /// signature. On by default.
    pub exec: bool,
    /// Seventh leg: compile every flattened version to the `flat-vm`
    /// register bytecode and run the same forced-path and live-dispatch
    /// checks through the compiled tier. On by default.
    pub vm: bool,
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle::new()
    }
}

impl Oracle {
    pub fn new() -> Oracle {
        Oracle {
            mutate_post_elab: None,
            max_assignments: 32,
            verify: true,
            exec: true,
            vm: true,
        }
    }

    /// Run the full differential check on `src` with the given inputs.
    pub fn check(&self, src: &str, inputs: &FuzzInputs) -> Result<OracleReport, Failure> {
        let sprog = guard("parse", || {
            flat_lang::parse_program(src).map_err(|e| fail("parse", e))
        })?;
        let def = sprog
            .find("main")
            .ok_or_else(|| fail("parse", "no `main` definition"))?;
        check_signature(def)?;

        // Leg 1: independent source-level interpretation.
        let reference = guard("source-eval", || {
            let out = eval::eval_def(
                def,
                &[("n".into(), inputs.n), ("m".into(), inputs.m)],
                &inputs.surface_args(),
            )
            .map_err(|e| fail("source-eval", e))?;
            eval::to_values(&out).map_err(|e| fail("source-eval", e))
        })?;

        // Leg 2: elaborate (includes typechecking) and interpret the IR.
        let mut prog = guard("elaborate", || {
            flat_lang::compile_sprogram(&sprog, "main").map_err(|e| fail("elaborate", e))
        })?;
        if let Some(mutate) = &self.mutate_post_elab {
            mutate(&mut prog);
        }
        if self.verify {
            let p = &prog;
            guard("verify-elab", || {
                verify_clean("verify-elab", "", flat_verify::verify_program(p))
            })?;
        }
        let args = inputs.ir_args();
        let ir_out = guard("ir-eval", || {
            flat_ir::interp::run_program(&prog, &args, &Thresholds::new())
                .map_err(|e| fail("ir-eval", e.0))
        })?;
        if ir_out != reference {
            return Err(mismatch("source-vs-ir", &reference, &ir_out, ""));
        }

        // Leg 3: fusion must preserve both typing and semantics.
        let fused = guard("fusion", || {
            let mut fused = prog.clone();
            flat_ir::fusion::fuse_program(&mut fused);
            flat_ir::typecheck::check_source(&fused)
                .map_err(|e| fail("fusion", format!("fused program is ill-typed: {e}")))?;
            Ok(fused)
        })?;
        if self.verify {
            let p = &fused;
            guard("verify-fusion", || {
                verify_clean("verify-fusion", "", flat_verify::verify_program(p))
            })?;
        }
        let fused_out = guard("fusion-eval", || {
            flat_ir::interp::run_program(&fused, &args, &Thresholds::new())
                .map_err(|e| fail("fusion-eval", e.0))
        })?;
        if fused_out != reference {
            return Err(mismatch("fusion-vs-source", &reference, &fused_out, ""));
        }

        // Leg 4: flatten and force every version path.
        let mut report = OracleReport::default();
        let dev = DeviceSpec::k40();
        for cfg in [FlattenConfig::moderate(), FlattenConfig::incremental()] {
            let mode = if cfg.mode == incflat::FlattenMode::Incremental {
                "incremental"
            } else {
                "moderate"
            };
            let fl = guard("flatten", || {
                incflat::flatten(&fused, &cfg)
                    .map_err(|e| fail("flatten", format!("{mode}: {e}")))
            })?;
            if self.verify {
                let fl = &fl;
                guard("verify-flatten", || {
                    verify_clean("verify-flatten", mode, flat_verify::verify_flattened(fl))
                })?;
            }
            let assignments = enumerate_assignments(&fl.thresholds, self.max_assignments);
            for asg in &assignments {
                let mut t = Thresholds::new();
                for (id, taken) in asg {
                    t.set(*id, if *taken { 0 } else { i64::MAX });
                }
                let ctx = || format!("{mode}, forced {}", render_assignment(asg));

                let (got, interp_path) = guard("version-run", || {
                    let mut interp = Interp::new(&t);
                    interp
                        .bind_args(&fl.prog, &args)
                        .map_err(|e| fail("version-run", format!("{}: {}", ctx(), e.0)))?;
                    let got = interp
                        .eval_body(&fl.prog.body)
                        .map_err(|e| fail("version-run", format!("{}: {}", ctx(), e.0)))?;
                    Ok((got, interp.path))
                })?;
                if got != reference {
                    return Err(mismatch("version-mismatch", &reference, &got, &ctx()));
                }
                report.versions_checked += 1;

                let isig = ThresholdRegistry::path_signature(&interp_path);
                // Every decision the run actually took must agree with
                // what the assignment forced (unreached guards are fine
                // — an `if` can skip a whole version region).
                for (id, taken) in &isig {
                    if let Some((_, forced)) = asg.iter().find(|(a, _)| a.0 == *id) {
                        if taken != forced {
                            return Err(fail(
                                "path-consistency",
                                format!(
                                    "{}: threshold {id} took {taken} against its forcing",
                                    ctx()
                                ),
                            ));
                        }
                    }
                }

                let sim = guard("simulate", || {
                    gpu_sim::sim::simulate_values(&fl.prog, &args, &t, &dev)
                        .map_err(|e| fail("simulate", format!("{}: {e}", ctx())))
                })?;
                let ssig = gpu_sim::sim::path_signature(&sim.path);
                if ssig != isig {
                    return Err(fail(
                        "sim-path",
                        format!("{}: simulator path {ssig:?} != interpreter path {isig:?}", ctx()),
                    ));
                }

                // Leg 6a: the real executor under the same forcing, on 2
                // threads with a tiny grain so even small inputs split
                // into several parallel tasks.
                if self.exec {
                    let erep = guard("exec-run", || {
                        flat_exec::run_program(&fl.prog, &args, &exec_config(&t))
                            .map_err(|e| fail("exec-run", format!("{}: {}", ctx(), e.0)))
                    })?;
                    if erep.values != reference {
                        return Err(mismatch("exec-mismatch", &reference, &erep.values, &ctx()));
                    }
                    let esig = erep.signature();
                    if esig != isig {
                        return Err(fail(
                            "exec-path",
                            format!(
                                "{}: executor path {esig:?} != interpreter path {isig:?}",
                                ctx()
                            ),
                        ));
                    }
                }

                // Leg 7a: the bytecode VM under the same forcing —
                // compiled-tier results and paths must match the
                // reference exactly, like the tree-walking executor's.
                if self.vm {
                    let vrep = guard("vm-run", || {
                        flat_vm::run_program(&fl.prog, &args, &exec_config(&t))
                            .map_err(|e| fail("vm-run", format!("{}: {}", ctx(), e.0)))
                    })?;
                    if vrep.values != reference {
                        return Err(mismatch("vm-mismatch", &reference, &vrep.values, &ctx()));
                    }
                    let vsig = vrep.signature();
                    if vsig != isig {
                        return Err(fail(
                            "vm-path",
                            format!(
                                "{}: vm path {vsig:?} != interpreter path {isig:?}",
                                ctx()
                            ),
                        ));
                    }
                }

                if mode == "incremental" {
                    push_distinct(&mut report.path_signatures, isig);
                }
            }

            // Leg 6b: live dispatch — no forcing, the default threshold
            // assignment decides against the actual `Par(...)` degrees.
            // The taken path must be one the branching tree admits.
            if self.exec {
                let live = guard("exec-live", || {
                    flat_exec::run_program(&fl.prog, &args, &exec_config(&Thresholds::new()))
                        .map_err(|e| fail("exec-live", format!("{mode}: {}", e.0)))
                })?;
                if live.values != reference {
                    return Err(mismatch("exec-live-mismatch", &reference, &live.values, mode));
                }
                let lsig = live.signature();
                if !flat_exec::path_in_tree(&fl.thresholds, &lsig) {
                    return Err(fail(
                        "exec-live-path",
                        format!("{mode}: live-dispatched path {lsig:?} is not in the threshold tree"),
                    ));
                }
            }

            // Leg 7b: live dispatch through the bytecode VM.
            if self.vm {
                let live = guard("vm-live", || {
                    flat_vm::run_program(&fl.prog, &args, &exec_config(&Thresholds::new()))
                        .map_err(|e| fail("vm-live", format!("{mode}: {}", e.0)))
                })?;
                if live.values != reference {
                    return Err(mismatch("vm-live-mismatch", &reference, &live.values, mode));
                }
                let lsig = live.signature();
                if !flat_exec::path_in_tree(&fl.thresholds, &lsig) {
                    return Err(fail(
                        "vm-live-path",
                        format!("{mode}: vm live-dispatched path {lsig:?} is not in the threshold tree"),
                    ));
                }
            }
        }
        Ok(report)
    }
}

/// Executor configuration for oracle legs: 2 threads exercises real
/// cross-thread scheduling, grain 4 forces multi-task decomposition
/// even on the fuzzer's small inputs.
fn exec_config(t: &Thresholds) -> flat_exec::ExecConfig {
    flat_exec::ExecConfig {
        thresholds: t.clone(),
        threads: Some(2),
        grain: 4,
        ..flat_exec::ExecConfig::default()
    }
}

fn check_signature(def: &SDef) -> Result<(), Failure> {
    let shape_ok = def.size_binders == ["n", "m"]
        && def.params.len() == 3
        && def.params[0].0 == "xss"
        && def.params[1].0 == "ys"
        && def.params[2].0 == "c";
    if shape_ok {
        Ok(())
    } else {
        Err(fail(
            "signature",
            "fuzz oracle requires `def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64)`",
        ))
    }
}

fn fail(stage: &'static str, detail: impl ToString) -> Failure {
    Failure { stage, detail: detail.to_string() }
}

/// The verifier leg: error-severity diagnostics fail the oracle
/// (warnings flag suspicious but semantics-preserving code and would
/// make the campaign flaky on healthy generator output).
fn verify_clean(
    stage: &'static str,
    ctx: &str,
    diags: Vec<flat_verify::Diagnostic>,
) -> Result<(), Failure> {
    let errors: Vec<&flat_verify::Diagnostic> = diags.iter().filter(|d| d.is_error()).collect();
    match errors.first() {
        None => Ok(()),
        Some(first) => {
            let sep = if ctx.is_empty() { "" } else { ": " };
            Err(fail(
                stage,
                format!("{ctx}{sep}{} ({} error diagnostics)", first.render(stage), errors.len()),
            ))
        }
    }
}

fn mismatch(stage: &'static str, want: &[Value], got: &[Value], ctx: &str) -> Failure {
    let sep = if ctx.is_empty() { "" } else { ": " };
    fail(stage, format!("{ctx}{sep}expected {want:?}, got {got:?}"))
}

/// Run `f`, converting a panic anywhere in the stage into a classified
/// [`Failure`] instead of aborting the fuzz campaign.
fn guard<T>(
    stage: &'static str,
    f: impl FnOnce() -> Result<T, Failure>,
) -> Result<T, Failure> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(fail(stage, format!("panicked: {msg}")))
        }
    }
}

fn push_distinct(sigs: &mut Vec<Vec<(u32, bool)>>, sig: Vec<(u32, bool)>) {
    if !sigs.contains(&sig) {
        sigs.push(sig);
    }
}

fn render_assignment(asg: &[(ThresholdId, bool)]) -> String {
    if asg.is_empty() {
        return "(no thresholds)".into();
    }
    asg.iter()
        .map(|(id, taken)| format!("t{}={}", id.0, if *taken { "0" } else { "MAX" }))
        .collect::<Vec<_>>()
        .join(",")
}

/// Walk the branching tree and produce, for every distinct version
/// path, the set of threshold decisions that forces it. Independent
/// siblings at the same tree node multiply (cartesian product), so the
/// result is capped at `cap` assignments.
pub fn enumerate_assignments(
    reg: &ThresholdRegistry,
    cap: usize,
) -> Vec<Vec<(ThresholdId, bool)>> {
    fn walk(
        reg: &ThresholdRegistry,
        prefix: &[(ThresholdId, bool)],
        cap: usize,
    ) -> Vec<Vec<(ThresholdId, bool)>> {
        let kids = reg.children_of(prefix);
        if kids.is_empty() {
            return vec![Vec::new()];
        }
        let mut product: Vec<Vec<(ThresholdId, bool)>> = vec![Vec::new()];
        for kid in kids {
            let mut options: Vec<Vec<(ThresholdId, bool)>> = Vec::new();
            for taken in [true, false] {
                let mut below = prefix.to_vec();
                below.push((kid.id, taken));
                for sub in walk(reg, &below, cap) {
                    let mut opt = vec![(kid.id, taken)];
                    opt.extend(sub);
                    options.push(opt);
                }
            }
            let mut next = Vec::new();
            'outer: for base in &product {
                for opt in &options {
                    let mut v = base.clone();
                    v.extend(opt.iter().copied());
                    next.push(v);
                    if next.len() >= cap {
                        break 'outer;
                    }
                }
            }
            product = next;
        }
        product
    }
    let mut out = walk(reg, &[], cap);
    out.truncate(cap);
    // Deduplicate defensively (sibling products can repeat when capped).
    let mut seen = BTreeSet::new();
    out.retain(|a| {
        let key: Vec<(u32, bool)> = a.iter().map(|(id, t)| (id.0, *t)).collect();
        seen.insert(key)
    });
    out
}

/// Deliberately break every `reduce`/`redomap` whose neutral element is
/// the literal `0`, swapping it for `1`. Used by tests to prove the
/// oracle detects a genuinely unsound transformation; returns how many
/// neutral elements were swapped.
pub fn break_zero_neutral_elements(prog: &mut flat_ir::Program) -> usize {
    use flat_ir::ast::{Exp, Soac, SubExp};
    use flat_ir::Const;

    fn fix_nes(nes: &mut [SubExp]) -> usize {
        let mut n = 0;
        for ne in nes {
            if matches!(ne, SubExp::Const(Const::I64(0))) {
                *ne = SubExp::Const(Const::I64(1));
                n += 1;
            }
        }
        n
    }

    fn walk_body(body: &mut flat_ir::ast::Body) -> usize {
        let mut n = 0;
        for stm in &mut body.stms {
            n += match &mut stm.exp {
                Exp::Soac(Soac::Reduce { lam, nes, .. }) => fix_nes(nes) + walk_body(&mut lam.body),
                Exp::Soac(Soac::Redomap { red, map, nes, .. }) => {
                    fix_nes(nes) + walk_body(&mut red.body) + walk_body(&mut map.body)
                }
                Exp::Soac(Soac::Map { lam, .. })
                | Exp::Soac(Soac::Scan { lam, .. }) => walk_body(&mut lam.body),
                Exp::Soac(Soac::Scanomap { scan, map, .. }) => {
                    walk_body(&mut scan.body) + walk_body(&mut map.body)
                }
                Exp::If { tb, fb, .. } => walk_body(tb) + walk_body(fb),
                Exp::Loop { body, .. } => walk_body(body),
                _ => 0,
            };
        }
        n
    }

    walk_body(&mut prog.body)
}

/// Convenience used by tests and the CLI: parse a single-`def` source
/// string and return its `main` definition.
pub fn parse_main(src: &str) -> Result<(SProgram, SDef), Failure> {
    let sprog = flat_lang::parse_program(src).map_err(|e| fail("parse", e))?;
    let def = sprog
        .find("main")
        .cloned()
        .ok_or_else(|| fail("parse", "no `main` definition"))?;
    Ok((sprog, def))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incflat::ThresholdKind;

    #[test]
    fn enumerates_the_paper_tree_shape() {
        // t0 at the root; t1 under t0=false — Fig. 5's two-level shape.
        let mut reg = ThresholdRegistry::new();
        let a = reg.fresh(ThresholdKind::SuffOuter, &[]);
        let _b = reg.fresh(ThresholdKind::SuffIntra, &[(a, false)]);
        let asgs = enumerate_assignments(&reg, 32);
        // Three versions: t0 taken; t0 not taken then t1 taken; neither.
        assert_eq!(asgs.len(), 3);
        assert!(asgs.iter().any(|a| a.len() == 1 && a[0].1));
        assert!(asgs.iter().any(|a| a.len() == 2));
    }

    #[test]
    fn enumeration_respects_the_cap() {
        let mut reg = ThresholdRegistry::new();
        for _ in 0..8 {
            reg.fresh(ThresholdKind::SuffOuter, &[]);
        }
        // 2^8 = 256 full combinations, capped.
        assert!(enumerate_assignments(&reg, 16).len() <= 16);
    }

    #[test]
    fn oracle_accepts_a_nested_map_program() {
        let src = "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =\n  \
                   map (\\r -> redomap (+) (\\x -> x * c) 0 r) xss";
        let inputs = FuzzInputs::from_seed(3, 4, 7);
        let report = Oracle::new().check(src, &inputs).expect("oracle should pass");
        assert!(
            report.distinct_paths() >= 2,
            "nested map-reduce must exercise at least two version paths, got {:?}",
            report.path_signatures
        );
        assert!(report.versions_checked >= 3);
    }

    #[test]
    fn oracle_catches_a_broken_neutral_element() {
        let src = "def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =\n  \
                   reduce (+) 0 ys";
        let inputs = FuzzInputs::from_seed(2, 3, 11);
        let mut oracle = Oracle::new();
        oracle.mutate_post_elab = Some(Box::new(|p| {
            let swapped = break_zero_neutral_elements(p);
            assert!(swapped > 0, "mutation found nothing to break");
        }));
        let err = oracle.check(src, &inputs).expect_err("must detect the broken reduce");
        assert_eq!(err.stage, "source-vs-ir", "unexpected failure: {err}");
    }
}
