//! Moderate and incremental flattening (§3 of the paper).
//!
//! The transformation implements the inference rules of Figs. 3 and 4 as
//! a recursive pass `Σ ⊢_l e ⇒ e'`:
//!
//! * **G0/G1/G2** — manifesting map nests as `segmap` when there is no
//!   inner parallelism (or we are at level 0).
//! * **G3** — the core of incremental flattening: at every map with
//!   inner parallelism, emit `e_top` (sequentialize the body), `e_middle`
//!   (body parallelism one hardware level down, in local memory), and
//!   `e_flat` (keep flattening), guarded by threshold comparisons.
//! * **G4** — interchange of a vectorized `reduce` with its inner `map`.
//! * **G5/G6** — map fission/distribution with array expansion (the
//!   `process_body` loop below, with grouping of sequential statements
//!   and hoisting of context-invariant ones).
//! * **G7** — interchanging map nests into `loop`s, expanding the
//!   loop-carried values.
//! * **G8** — distributing a context across `if` branches.
//! * **G9** — versioned treatment of `redomap` (and symmetrically
//!   `scanomap`).
//!
//! Moderate flattening (\[32\], PLDI '17) uses the same machinery but
//! replaces the guarded versions by a static heuristic: map nests are
//! distributed, perfect `reduce`/`scan` nests are parallelized, and inner
//! `redomap`s are sequentialized (enabling block tiling). The
//! `full_flattening` knob turns the heuristic into "always exploit all
//! parallelism", the paper's approximation of NESL-style full flattening
//! (§5.3).
//!
//! A note on hoisting: context-invariant statements are computed once
//! outside the map nest. As in Futhark, this may execute code that a
//! zero-width map would have skipped; the language is pure, so at worst
//! this turns a skipped division-by-zero into a raised one.

use crate::ctx::Ctx;
use crate::rules::{Rule, RuleTrace};
use crate::thresholds::{ThresholdKind, ThresholdRegistry};
use flat_ir::ast::*;
use flat_ir::builder::BodyBuilder;
use flat_ir::free::{body_contains_soac, contains_soac, free_in_stm, lambda_contains_soac};
use flat_ir::prov::Prov;
use flat_ir::subst::{rename_body, rename_lambda};
use flat_ir::typecheck::{check_target, TypeError};
use flat_ir::types::{Param, Type};
use flat_ir::VName;
use std::collections::{HashMap, HashSet};

/// Which flattening algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlattenMode {
    /// The static heuristic of \[32\] — the paper's baseline (MF).
    Moderate,
    /// Multi-versioned incremental flattening (IF) — the contribution.
    Incremental,
}

/// Configuration of the flattening pass.
#[derive(Clone, Debug)]
pub struct FlattenConfig {
    pub mode: FlattenMode,
    /// Ablation (§5.3): make the moderate heuristic always exploit all
    /// parallelism, approximating full flattening.
    pub full_flattening: bool,
    /// Detect block-tiling opportunities on sequentialized-body kernels.
    pub enable_tiling: bool,
    /// Tile size used by detected block tiling.
    pub tile_size: u32,
    /// Run copy propagation and dead-code elimination on the result.
    pub simplify: bool,
}

impl FlattenConfig {
    pub fn moderate() -> FlattenConfig {
        FlattenConfig {
            mode: FlattenMode::Moderate,
            full_flattening: false,
            enable_tiling: true,
            tile_size: 16,
            simplify: true,
        }
    }

    pub fn incremental() -> FlattenConfig {
        FlattenConfig { mode: FlattenMode::Incremental, ..FlattenConfig::moderate() }
    }

    /// The full-flattening ablation of §5.3.
    pub fn full() -> FlattenConfig {
        FlattenConfig { full_flattening: true, ..FlattenConfig::moderate() }
    }
}

/// Code-size statistics (the paper reports IF ≈ 3× larger binaries and
/// ≈ 4× longer compilation, §5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeStats {
    /// Statements in the source program (recursively).
    pub source_stms: usize,
    /// Statements in the flattened program (recursively).
    pub target_stms: usize,
    /// Parallel constructs emitted.
    pub num_segops: usize,
    /// Threshold parameters minted.
    pub num_thresholds: usize,
    /// Leaves of the branching tree (distinct code versions).
    pub num_versions: usize,
}

/// The result of flattening: a target program, its threshold structure,
/// code statistics, and the rule-firing trace that produced it.
#[derive(Clone, Debug)]
pub struct Flattened {
    pub prog: Program,
    pub thresholds: ThresholdRegistry,
    pub stats: CodeStats,
    pub rules: RuleTrace,
}

/// A structured flattening failure. Malformed inputs that previously
/// aborted the process now surface here, so callers (in particular the
/// `flat-fuzz` differential driver) can classify them.
#[derive(Clone, Debug, PartialEq)]
pub enum FlattenError {
    /// Rule G4 requires the neutral element of a vectorized reduce to be
    /// an array variable (e.g. a `replicate`); a constant cannot be
    /// interchanged column-wise.
    G4NeutralElement { detail: String },
    /// A result atom referred to a variable with no known type: neither a
    /// pending binding, a context binding, nor a host-scope binding.
    UnknownAtomType { var: String },
    /// The flattened program failed the target-language type check.
    Type(TypeError),
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlattenError::G4NeutralElement { detail } => {
                write!(f, "G4: neutral element of a vectorized reduce must be an array variable: {detail}")
            }
            FlattenError::UnknownAtomType { var } => {
                write!(f, "atom_elem_type: unknown type of {var}")
            }
            FlattenError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FlattenError {}

impl From<TypeError> for FlattenError {
    fn from(e: TypeError) -> FlattenError {
        FlattenError::Type(e)
    }
}

/// Flatten a source program under the given configuration. The result is
/// type-checked as a target program.
///
/// Observability: each pass (flatten → simplify → re-typecheck) records
/// a wall-clock span in the global `flat-obs` recorder, and the rule
/// firing counts are mirrored into `compiler.rule.G*` counters.
pub fn flatten(prog: &Program, cfg: &FlattenConfig) -> Result<Flattened, FlattenError> {
    let mode_name = match (cfg.mode, cfg.full_flattening) {
        (FlattenMode::Moderate, false) => "moderate",
        (FlattenMode::Moderate, true) => "full",
        (FlattenMode::Incremental, _) => "incremental",
    };
    let mut fl = Flattener {
        cfg: cfg.clone(),
        reg: ThresholdRegistry::new(),
        path: Vec::new(),
        intra_factors: Vec::new(),
        num_segops: 0,
        tyenv: prog.params.iter().map(|p| (p.name, p.ty.clone())).collect(),
        rules: RuleTrace::default(),
        cur_prov: Prov::UNKNOWN,
        error: None,
    };
    let mut out = {
        let _span = flat_obs::span("compiler", "pass.flatten")
            .arg("mode", flat_obs::json::Value::from(mode_name))
            .arg("entry", flat_obs::json::Value::from(prog.name.as_str()));
        let mut bb = BodyBuilder::new();
        let atoms = fl.process_body(&Ctx::empty(), LVL_GRID, &prog.body, &mut bb);
        Program {
            name: prog.name.clone(),
            params: prog.params.clone(),
            body: bb.finish(atoms),
            ret: prog.ret.clone(),
            // The flattener mints no provenance of its own: every target
            // statement points back into the source program's table.
            prov: prog.prov.clone(),
        }
    };
    // Structural failures are recorded rather than thrown mid-recursion;
    // surface the first one before running any later pass over the
    // (necessarily incomplete) output.
    if let Some(e) = fl.error {
        return Err(e);
    }
    {
        // Version branches of the threshold tree may share binders with
        // the original body; restore global uniqueness before any later
        // pass (and the flat-verify V001 rule) sees the program.
        let _span = flat_obs::span("compiler", "pass.uniquify");
        let renamed = flat_ir::uniquify::uniquify_program(&mut out);
        if renamed > 0 {
            flat_obs::global().metrics().add("compiler.uniquify_renamed", renamed as u64);
        }
    }
    if cfg.simplify {
        let _span = flat_obs::span("compiler", "pass.simplify");
        crate::simplify::simplify_program(&mut out);
    }
    {
        let _span = flat_obs::span("compiler", "pass.typecheck");
        check_target(&out)?;
    }
    let stats = CodeStats {
        source_stms: count_body(&prog.body),
        target_stms: count_body(&out.body),
        num_segops: fl.num_segops,
        num_thresholds: fl.reg.len(),
        num_versions: fl.reg.num_versions(),
    };
    let metrics = flat_obs::global().metrics();
    for (rule, count) in fl.rules.counts() {
        if count > 0 {
            metrics.add(&format!("compiler.rule.{rule}"), count);
        }
    }
    metrics.add("compiler.flatten_runs", 1);
    metrics.observe("compiler.target_stms", stats.target_stms as u64);
    Ok(Flattened { prog: out, thresholds: fl.reg, stats, rules: fl.rules })
}

/// Convenience: moderate flattening.
pub fn flatten_moderate(prog: &Program) -> Result<Flattened, FlattenError> {
    flatten(prog, &FlattenConfig::moderate())
}

/// Convenience: incremental flattening.
pub fn flatten_incremental(prog: &Program) -> Result<Flattened, FlattenError> {
    flatten(prog, &FlattenConfig::incremental())
}

struct Flattener {
    cfg: FlattenConfig,
    reg: ThresholdRegistry,
    /// Branch conditions under which the code currently being generated
    /// is reachable (ancestry for freshly minted thresholds).
    path: Vec<(ThresholdId, bool)>,
    /// Collector stack for the parallel sizes of level-0 segops, used to
    /// compute the `Par(e_middle)` guard of rule G3.
    intra_factors: Vec<Vec<Vec<SubExp>>>,
    num_segops: usize,
    /// Types of host-scope bindings (for typing invariant result atoms).
    tyenv: HashMap<VName, Type>,
    /// Which rules fired where (drives `flatten --explain`).
    rules: RuleTrace,
    /// Provenance of the source statement currently being transformed;
    /// stamped onto emitted code and recorded rule firings.
    cur_prov: Prov,
    /// First structural failure encountered. The recursive pass has no
    /// Result plumbing, so errors are parked here and checked by
    /// `flatten()` before any later pass runs.
    error: Option<FlattenError>,
}

impl Flattener {
    /// Record a rule firing at the current source construct.
    fn fire(&mut self, rule: Rule, note: impl Into<String>) {
        let prov = self.cur_prov;
        self.rules.fire_at(rule, note, prov);
    }

    // ================================================================
    // Distribution (rule G6 generalization): process a body under Σ.
    // Returns the Σ-expanded result atoms, emitting statements to `bb`
    // (which lives at the scope *outside* Σ). With an empty context this
    // doubles as host-level (or group-level) code processing.
    // ================================================================
    fn process_body(
        &mut self,
        ctx: &Ctx,
        level: Level,
        body: &Body,
        bb: &mut BodyBuilder,
    ) -> Vec<SubExp> {
        let mut ctx = ctx.clone();
        let mut pending: Vec<Stm> = Vec::new();
        let mut pending_defs: HashSet<VName> = HashSet::new();

        for stm in &body.stms {
            // Statements synthesized without provenance (decomposed
            // redomaps, G4 transposes) inherit the enclosing construct's.
            if !stm.prov.is_unknown() {
                self.cur_prov = stm.prov;
            }
            bb.set_prov(self.cur_prov);
            for p in &stm.pat {
                self.tyenv.insert(p.name, p.ty.clone());
            }
            let free = free_in_stm(stm);
            let depends_on_pending = !free.is_disjoint(&pending_defs);

            if ctx.invariant(&free) && !depends_on_pending {
                // Hoisting: context-invariant code runs once, outside Σ.
                self.hoisted_stm(level, stm, bb);
                continue;
            }
            if !depends_on_pending && self.try_g5(&mut ctx, stm, bb) {
                // Rule G5: a rearrange of a context-bound array lifts to
                // a host-level rearrange of its expansion.
                continue;
            }
            if self.distributable(&ctx, stm) {
                self.flush_pending(&mut ctx, level, &mut pending, &mut pending_defs, bb);
                self.distribute_stm(&mut ctx, level, stm, bb);
                continue;
            }
            for p in &stm.pat {
                pending_defs.insert(p.name);
            }
            pending.push(stm.clone());
        }

        // Final results: anything not already available Σ-expanded comes
        // out of a trailing segmap over the remaining sequential code.
        let needs_kernel = |ctx: &Ctx, pending_defs: &HashSet<VName>, atom: &SubExp| -> bool {
            match atom {
                SubExp::Const(_) => !ctx.is_empty(),
                SubExp::Var(v) => {
                    if pending_defs.contains(v) {
                        true
                    } else if ctx.is_empty() || ctx.expansion_of(*v).is_some() {
                        false
                    } else {
                        // Context-bound without a known expansion, or an
                        // invariant value that must be broadcast.
                        true
                    }
                }
            }
        };

        let mut result: Vec<SubExp> = Vec::with_capacity(body.result.len());
        let mut from_kernel: Vec<(usize, SubExp, Type)> = Vec::new();
        for (i, atom) in body.result.iter().enumerate() {
            if needs_kernel(&ctx, &pending_defs, atom) {
                let ty = self.atom_elem_type(&ctx, &pending, atom);
                from_kernel.push((i, *atom, ty));
                result.push(SubExp::i64(0)); // placeholder, patched below
            } else {
                match atom {
                    SubExp::Var(v) if !ctx.is_empty() => {
                        result.push(SubExp::Var(ctx.expansion_of(*v).unwrap()))
                    }
                    other => result.push(*other),
                }
            }
        }

        if ctx.is_empty() {
            // Host scope: leftover sequential statements are emitted
            // directly; results are already in scope.
            for stm in pending {
                bb.push(stm);
            }
            for (i, atom, _) in &from_kernel {
                result[*i] = *atom;
            }
        } else if !from_kernel.is_empty() {
            self.fire(
                Rule::G1,
                format!(
                    "{} trailing result(s) manifested as segmap (depth {})",
                    from_kernel.len(),
                    ctx.depth()
                ),
            );
            let kbody = Body::new(
                pending,
                from_kernel.iter().map(|(_, a, _)| *a).collect(),
            );
            let elem_tys: Vec<Type> = from_kernel.iter().map(|(_, _, t)| t.clone()).collect();
            let out: Vec<Param> = elem_tys
                .iter()
                .map(|t| Param::fresh("res", ctx.expand_type(t)))
                .collect();
            self.manifest_segmap(&ctx, level, kbody, elem_tys, &out, bb);
            for ((i, _, _), p) in from_kernel.iter().zip(&out) {
                result[*i] = SubExp::Var(p.name);
            }
        }
        // else: leftover pending under a non-empty context whose results
        // are all covered — the pending code is dead; drop it.
        result
    }

    /// Would rule G5 fire for some statement of this body?
    fn has_liftable_rearrange(&self, ctx: &Ctx, body: &Body) -> bool {
        body.stms.iter().any(|stm| match &stm.exp {
            Exp::Rearrange { arr, .. } => {
                ctx.dom().contains(arr) && ctx.expansion_of(*arr).is_some()
            }
            _ => false,
        })
    }

    /// Rule G5: `Σ,⟨x ∈ y⟩ ⊢ rearrange ks x  ⇒  Σ ⊢ rearrange (0,1+ks) y`
    /// — generalized to the whole context at once: a rearrange of a
    /// context-bound array with a known expansion becomes one host-level
    /// rearrange of the expansion, with the permutation shifted past the
    /// context dimensions. Returns whether the rule fired.
    fn try_g5(&mut self, ctx: &mut Ctx, stm: &Stm, bb: &mut BodyBuilder) -> bool {
        if ctx.is_empty() || stm.pat.len() != 1 {
            return false;
        }
        let Exp::Rearrange { perm, arr } = &stm.exp else {
            return false;
        };
        if !ctx.dom().contains(arr) {
            return false;
        }
        let Some(expansion) = ctx.expansion_of(*arr) else {
            return false;
        };
        let depth = ctx.depth();
        let mut lifted: Vec<usize> = (0..depth).collect();
        lifted.extend(perm.iter().map(|p| p + depth));
        let pat = &stm.pat[0];
        let out = Param::fresh(&pat.name.base(), ctx.expand_type(&pat.ty));
        self.tyenv.insert(out.name, out.ty.clone());
        bb.push(Stm::new(
            vec![out.clone()],
            Exp::Rearrange { perm: lifted, arr: expansion },
        ));
        self.fire(
            Rule::G5,
            format!(
                "rearrange of context-bound {} lifted past {depth} dim(s) to host level",
                arr.base()
            ),
        );
        ctx.bind_elementwise(pat.name, &pat.ty, out.name);
        true
    }

    /// Emit a context-invariant statement at the current scope,
    /// transforming any parallelism it contains at this level.
    fn hoisted_stm(&mut self, level: Level, stm: &Stm, bb: &mut BodyBuilder) {
        if contains_soac(&stm.exp) {
            self.distribute_stm(&mut Ctx::empty(), level, stm, bb);
        } else {
            bb.push(stm.clone());
        }
    }

    /// Is this statement handled by the parallel machinery (as opposed to
    /// being bundled into a sequential kernel)?
    fn distributable(&self, ctx: &Ctx, stm: &Stm) -> bool {
        match &stm.exp {
            Exp::Soac(Soac::Map { .. }) => true,
            Exp::Soac(Soac::Reduce { lam, .. }) | Exp::Soac(Soac::Scan { lam, .. }) => {
                // Operators over array elements are only handled via the
                // G4 interchange; otherwise sequentialize.
                lam.params.iter().all(|p| p.ty.is_scalar())
                    || self.g4_shape(&stm.exp).is_some()
            }
            Exp::Soac(Soac::Redomap { .. }) | Exp::Soac(Soac::Scanomap { .. }) => {
                match self.cfg.mode {
                    FlattenMode::Incremental => true,
                    // The moderate heuristic sequentializes inner
                    // redomaps (enabling tiling) — unless this is the
                    // full-flattening ablation, or there is no outer
                    // parallelism to fall back on.
                    FlattenMode::Moderate => self.cfg.full_flattening || ctx.is_empty(),
                }
            }
            Exp::Loop { params, bound, body, .. } => {
                // Interchange (G7) is only worthwhile when the loop body
                // contains parallelism this mode would actually exploit —
                // e.g. the moderate heuristic leaves a loop around a lone
                // redomap sequential (and tiles it), as Futhark does for
                // LavaMD (§5.3).
                if !self.body_has_exploitable(ctx, body) {
                    return false;
                }
                // G7 requires the trip count invariant and each
                // loop-carried initializer either invariant or already
                // expanded.
                let bound_ok = match bound {
                    SubExp::Const(_) => true,
                    SubExp::Var(v) => !ctx.dom().contains(v),
                };
                bound_ok
                    && params.iter().all(|(_, init)| match init {
                        SubExp::Const(_) => true,
                        SubExp::Var(v) => {
                            !ctx.dom().contains(v) || ctx.expansion_of(*v).is_some()
                        }
                    })
            }
            Exp::If { cond, tb, fb, .. } => {
                if !(self.body_has_exploitable(ctx, tb)
                    || self.body_has_exploitable(ctx, fb))
                {
                    return false;
                }
                // G8 requires the condition invariant to Σ.
                match cond {
                    SubExp::Const(_) => true,
                    SubExp::Var(v) => !ctx.dom().contains(v),
                }
            }
            _ => false,
        }
    }

    /// Does the body contain any statement the current mode would
    /// distribute?
    fn body_has_exploitable(&self, ctx: &Ctx, body: &Body) -> bool {
        body.stms.iter().any(|s| {
            self.distributable(ctx, s)
                || match &s.exp {
                    Exp::Loop { body, .. } => self.body_has_exploitable(ctx, body),
                    Exp::If { tb, fb, .. } => {
                        self.body_has_exploitable(ctx, tb)
                            || self.body_has_exploitable(ctx, fb)
                    }
                    _ => false,
                }
        })
    }

    /// Manifest the pending run of sequential statements as a `segmap`,
    /// making every value it defines available elementwise afterwards.
    fn flush_pending(
        &mut self,
        ctx: &mut Ctx,
        level: Level,
        pending: &mut Vec<Stm>,
        pending_defs: &mut HashSet<VName>,
        bb: &mut BodyBuilder,
    ) {
        if pending.is_empty() {
            return;
        }
        let stms = std::mem::take(pending);
        pending_defs.clear();
        if ctx.is_empty() {
            for stm in stms {
                bb.push(stm);
            }
            return;
        }
        self.fire(
            Rule::G1,
            format!(
                "{} pending sequential stm(s) manifested as segmap (depth {})",
                stms.len(),
                ctx.depth()
            ),
        );
        let pats: Vec<Param> = stms.iter().flat_map(|s| s.pat.clone()).collect();
        let results: Vec<SubExp> = pats.iter().map(|p| SubExp::Var(p.name)).collect();
        let elem_tys: Vec<Type> = pats.iter().map(|p| p.ty.clone()).collect();
        let out: Vec<Param> = pats
            .iter()
            .map(|p| Param::fresh(&p.name.base(), ctx.expand_type(&p.ty)))
            .collect();
        // Attribute the manifested kernel to the pending code it bundles,
        // not to the statement that triggered the flush.
        let seg_prov = stms
            .iter()
            .map(|s| s.prov)
            .find(|p| !p.is_unknown())
            .unwrap_or(self.cur_prov);
        let kbody = Body::new(stms, results);
        let saved = bb.prov();
        bb.set_prov(seg_prov);
        self.manifest_segmap(ctx, level, kbody, elem_tys, &out, bb);
        bb.set_prov(saved);
        for (p, o) in pats.iter().zip(&out) {
            ctx.bind_elementwise(p.name, &p.ty, o.name);
        }
    }

    /// Transform one distributable statement under Σ, emitting code that
    /// binds Σ-expanded versions of its pattern, and recording the
    /// expansions in the context.
    fn distribute_stm(&mut self, ctx: &mut Ctx, level: Level, stm: &Stm, bb: &mut BodyBuilder) {
        let out: Vec<Param> = stm
            .pat
            .iter()
            .map(|p| {
                if ctx.is_empty() {
                    p.clone()
                } else {
                    Param::fresh(&p.name.base(), ctx.expand_type(&p.ty))
                }
            })
            .collect();
        for o in &out {
            self.tyenv.insert(o.name, o.ty.clone());
        }
        match &stm.exp {
            Exp::Soac(soac) => self.transform_soac(ctx, level, soac, &out, bb),
            Exp::Loop { .. } => self.transform_loop(ctx, level, &stm.exp, &out, bb),
            Exp::If { .. } => self.transform_if(ctx, level, &stm.exp, &out, bb),
            other => unreachable!("distribute_stm on non-parallel exp {other:?}"),
        }
        if !ctx.is_empty() {
            for (p, o) in stm.pat.iter().zip(&out) {
                ctx.bind_elementwise(p.name, &p.ty, o.name);
            }
        }
    }

    // ================================================================
    // SOAC transformation (rules G2, G3, G4, G9).
    // ================================================================
    fn transform_soac(
        &mut self,
        ctx: &Ctx,
        level: Level,
        soac: &Soac,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        match soac {
            Soac::Map { w, lam, arrs } => self.do_map(ctx, level, *w, lam, arrs, out, bb),
            Soac::Reduce { w, lam, nes, arrs } => {
                if let Some((inner_op, k)) = self.g4_reduce_shape(lam) {
                    self.do_g4(ctx, level, *w, &inner_op, k, nes, arrs, out, bb);
                } else {
                    // Perfectly nested reduce: manifest as segred with an
                    // identity body.
                    self.fire(
                        Rule::G2,
                        format!(
                            "perfectly nested reduce manifested as segred (depth {})",
                            ctx.depth() + 1
                        ),
                    );
                    let elem_tys: Vec<Type> =
                        lam.params[nes.len()..].iter().map(|p| p.ty.clone()).collect();
                    let params: Vec<Param> = elem_tys
                        .iter()
                        .map(|t| Param::fresh("e", t.clone()))
                        .collect();
                    let body =
                        Body::results(params.iter().map(|p| SubExp::Var(p.name)).collect());
                    let mut ctx2 = ctx.clone();
                    ctx2.push_dim(*w, params.into_iter().zip(arrs.iter().copied()).collect());
                    self.manifest_segred(
                        &ctx2, level, lam.clone(), nes.to_vec(), body, elem_tys, out, bb,
                    );
                }
            }
            Soac::Scan { w, lam, nes, arrs } => {
                self.fire(
                    Rule::G2,
                    format!(
                        "perfectly nested scan manifested as segscan (depth {})",
                        ctx.depth() + 1
                    ),
                );
                let elem_tys: Vec<Type> =
                    lam.params[nes.len()..].iter().map(|p| p.ty.clone()).collect();
                let params: Vec<Param> = elem_tys
                    .iter()
                    .map(|t| Param::fresh("e", t.clone()))
                    .collect();
                let body = Body::results(params.iter().map(|p| SubExp::Var(p.name)).collect());
                let mut ctx2 = ctx.clone();
                ctx2.push_dim(*w, params.into_iter().zip(arrs.iter().copied()).collect());
                self.manifest_segscan(
                    &ctx2, level, lam.clone(), nes.to_vec(), body, elem_tys, out, bb,
                );
            }
            Soac::Redomap { w, red, map, nes, arrs } => {
                self.do_redomap(ctx, level, *w, red, map, nes, arrs, out, bb, false)
            }
            Soac::Scanomap { w, scan, map, nes, arrs } => {
                self.do_redomap(ctx, level, *w, scan, map, nes, arrs, out, bb, true)
            }
        }
    }

    /// Rule G3 (and G2 when there is no inner parallelism).
    #[allow(clippy::too_many_arguments)]
    fn do_map(
        &mut self,
        ctx: &Ctx,
        level: Level,
        w: SubExp,
        lam: &Lambda,
        arrs: &[VName],
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        let mut ctx2 = ctx.clone();
        ctx2.push_dim(
            w,
            lam.params.iter().cloned().zip(arrs.iter().copied()).collect(),
        );

        if !body_contains_soac(&lam.body) {
            // Rule G5 pre-empts G2: a body that rearranges context-bound
            // arrays lifts to host-level rearranges instead of a copy
            // kernel.
            if self.has_liftable_rearrange(&ctx2, &lam.body) {
                let atoms = self.process_body(&ctx2, level, &lam.body, bb);
                for (p, a) in out.iter().zip(&atoms) {
                    bb.push(Stm::single(p.name, p.ty.clone(), Exp::SubExp(*a)));
                }
                return;
            }
            // G2: no inner parallelism — manifest.
            self.fire(
                Rule::G2,
                format!(
                    "parallelism-free map body manifested as segmap (nest depth {})",
                    ctx2.depth()
                ),
            );
            self.manifest_segmap(&ctx2, level, lam.body.clone(), lam.ret.clone(), out, bb);
            return;
        }

        if self.cfg.mode == FlattenMode::Moderate || level == LVL_GROUP {
            // Moderate flattening keeps distributing; so does incremental
            // flattening at level 0 (there is no level below to version
            // for).
            if level == LVL_GROUP {
                self.fire(
                    Rule::G0,
                    format!("map distributed at intra-group level (depth {})", ctx2.depth()),
                );
            } else {
                self.fire(
                    Rule::G6,
                    format!("moderate-mode distribution of map (depth {})", ctx2.depth()),
                );
            }
            let atoms = self.process_body(&ctx2, level, &lam.body, bb);
            for (p, a) in out.iter().zip(&atoms) {
                bb.push(Stm::single(p.name, p.ty.clone(), Exp::SubExp(*a)));
            }
        } else {
            self.g3_versions(&ctx2, level, lam, out, bb);
        }
    }

    /// The three guarded versions of rule G3.
    fn g3_versions(
        &mut self,
        ctx2: &Ctx,
        level: Level,
        lam: &Lambda,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        let prov = self.cur_prov;
        let ret_tys: Vec<Type> = out.iter().map(|p| p.ty.clone()).collect();
        let t_top = self.reg.fresh_at(ThresholdKind::SuffOuter, &self.path, prov);
        self.fire(
            Rule::G3,
            format!(
                "map with inner parallelism (depth {}): {t_top} guards e_top vs e_middle/e_flat",
                ctx2.depth()
            ),
        );

        // e_top: manifest Σ' with the body sequentialized.
        self.path.push((t_top, true));
        let mut bb_top = BodyBuilder::new();
        bb_top.set_prov(prov);
        let top_out: Vec<Param> = out
            .iter()
            .map(|p| Param::fresh(&p.name.base(), p.ty.clone()))
            .collect();
        self.manifest_segmap(
            ctx2,
            level,
            rename_body(&lam.body),
            lam.ret.clone(),
            &top_out,
            &mut bb_top,
        );
        let e_top = bb_top.finish(top_out.iter().map(|p| SubExp::Var(p.name)).collect());
        self.path.pop();

        self.path.push((t_top, false));

        // e_middle: body parallelism one level down (intra-group). Only
        // meaningful when the body actually yields level-0 parallelism.
        let middle = {
            let body = rename_body(&lam.body);
            self.intra_factors.push(Vec::new());
            let mut bbi = BodyBuilder::new();
            let atoms = self.process_body(&Ctx::empty(), LVL_GROUP, &body, &mut bbi);
            let intra_body = bbi.finish(atoms);
            let factors = self.intra_factors.pop().unwrap();
            if factors.is_empty() {
                None
            } else {
                Some((intra_body, factors))
            }
        };

        let inner = match middle {
            Some((intra_body, factors)) => {
                self.cur_prov = prov;
                let t_intra = self.reg.fresh_at(ThresholdKind::SuffIntra, &self.path, prov);

                // The e_middle kernel itself.
                let mut bb_mid = BodyBuilder::new();
                bb_mid.set_prov(prov);
                let mid_out: Vec<Param> = out
                    .iter()
                    .map(|p| Param::fresh(&p.name.base(), p.ty.clone()))
                    .collect();
                let seg = SegOp {
                    kind: SegKind::Map,
                    level,
                    ctx: ctx2.to_segctx(),
                    body: intra_body,
                    body_ret: lam.ret.clone(),
                    tiling: Tiling::None,
                };
                self.num_segops += 1;
                bb_mid.push(Stm::new(mid_out.clone(), Exp::Seg(seg)));
                let e_middle =
                    bb_mid.finish(mid_out.iter().map(|p| SubExp::Var(p.name)).collect());

                // e_flat under path (t_top=false, t_intra=false).
                self.path.push((t_intra, false));
                let mut bb_flat = BodyBuilder::new();
                let flat_body = rename_body(&lam.body);
                let flat_atoms = self.process_body(ctx2, level, &flat_body, &mut bb_flat);
                let e_flat = bb_flat.finish(flat_atoms);
                self.path.pop();

                // Guard: Par(e_middle) = Par(Σ') * max(inner level-0
                // parallelism) >= t_intra.
                let mut bb_guard = BodyBuilder::new();
                bb_guard.set_prov(prov);
                let mut max_inner: Option<SubExp> = None;
                for fs in &factors {
                    let p = bb_guard.product(fs);
                    max_inner = Some(match max_inner {
                        None => p,
                        Some(m) => SubExp::Var(bb_guard.binop(BinOp::Max, m, p, Type::i64())),
                    });
                }
                let mut guard_factors = ctx2.widths();
                guard_factors.push(max_inner.unwrap());
                let c_intra = bb_guard.bind(
                    "suff_intra",
                    Type::bool(),
                    Exp::CmpThreshold { factors: guard_factors, threshold: t_intra },
                );
                let mid_names = bb_guard.bind_multi(
                    "v",
                    ret_tys.clone(),
                    Exp::If {
                        cond: SubExp::Var(c_intra),
                        tb: e_middle,
                        fb: e_flat,
                        ret: ret_tys.clone(),
                    },
                );
                bb_guard.finish(mid_names.into_iter().map(SubExp::Var).collect())
            }
            None => {
                let mut bb_flat = BodyBuilder::new();
                let flat_body = rename_body(&lam.body);
                let flat_atoms = self.process_body(ctx2, level, &flat_body, &mut bb_flat);
                bb_flat.finish(flat_atoms)
            }
        };
        self.path.pop();

        self.cur_prov = prov;
        bb.set_prov(prov);
        let c_top = bb.bind(
            "suff_outer",
            Type::bool(),
            Exp::CmpThreshold { factors: ctx2.widths(), threshold: t_top },
        );
        bb.push(Stm::new(
            out.to_vec(),
            Exp::If { cond: SubExp::Var(c_top), tb: e_top, fb: inner, ret: ret_tys },
        ));
    }

    /// Rule G9: versioned redomap (and symmetrically scanomap).
    #[allow(clippy::too_many_arguments)]
    fn do_redomap(
        &mut self,
        ctx: &Ctx,
        level: Level,
        w: SubExp,
        op: &Lambda,
        map_lam: &Lambda,
        nes: &[SubExp],
        arrs: &[VName],
        out: &[Param],
        bb: &mut BodyBuilder,
        is_scan: bool,
    ) {
        let manifest =
            |fl: &mut Flattener, body: Body, out: &[Param], bb: &mut BodyBuilder| {
                let mut ctx2 = ctx.clone();
                ctx2.push_dim(
                    w,
                    map_lam.params.iter().cloned().zip(arrs.iter().copied()).collect(),
                );
                if is_scan {
                    fl.manifest_segscan(
                        &ctx2, level, op.clone(), nes.to_vec(), body,
                        map_lam.ret.clone(), out, bb,
                    );
                } else {
                    fl.manifest_segred(
                        &ctx2, level, op.clone(), nes.to_vec(), body,
                        map_lam.ret.clone(), out, bb,
                    );
                }
            };

        let opname = if is_scan { "scanomap" } else { "redomap" };
        if !lambda_contains_soac(map_lam) || level == LVL_GROUP {
            let why = if lambda_contains_soac(map_lam) {
                "intra-group level"
            } else {
                "parallelism-free body"
            };
            self.fire(
                Rule::G2,
                format!("{opname} manifested as seg-op ({why}, depth {})", ctx.depth() + 1),
            );
            manifest(self, map_lam.body.clone(), out, bb);
            return;
        }

        match self.cfg.mode {
            FlattenMode::Moderate => {
                if self.cfg.full_flattening {
                    self.fire(
                        Rule::G9,
                        format!("{opname} decomposed unguarded (full flattening)"),
                    );
                    self.redomap_decomposed(
                        ctx, level, w, op, map_lam, nes, arrs, out, bb, is_scan,
                    );
                } else {
                    // Reached only when there is no outer parallelism to
                    // prefer: manifest with the body sequentialized.
                    self.fire(
                        Rule::G2,
                        format!("{opname} body sequentialized (moderate heuristic)"),
                    );
                    manifest(self, map_lam.body.clone(), out, bb);
                }
            }
            FlattenMode::Incremental => {
                // G9: e_top (manifest now) vs. e_rec (decompose and keep
                // flattening).
                let prov = self.cur_prov;
                let t_top = self.reg.fresh_at(ThresholdKind::SuffOuter, &self.path, prov);
                self.fire(
                    Rule::G9,
                    format!(
                        "{opname} with inner parallelism: {t_top} guards e_top vs e_rec"
                    ),
                );

                self.path.push((t_top, true));
                let mut bb_top = BodyBuilder::new();
                bb_top.set_prov(prov);
                let top_out: Vec<Param> = out
                    .iter()
                    .map(|p| Param::fresh(&p.name.base(), p.ty.clone()))
                    .collect();
                manifest(self, rename_body(&map_lam.body), &top_out, &mut bb_top);
                let e_top =
                    bb_top.finish(top_out.iter().map(|p| SubExp::Var(p.name)).collect());
                self.path.pop();

                self.path.push((t_top, false));
                let mut bb_rec = BodyBuilder::new();
                bb_rec.set_prov(prov);
                let rec_out: Vec<Param> = out
                    .iter()
                    .map(|p| Param::fresh(&p.name.base(), p.ty.clone()))
                    .collect();
                self.redomap_decomposed(
                    ctx, level, w, op, map_lam, nes, arrs, &rec_out, &mut bb_rec, is_scan,
                );
                let e_rec =
                    bb_rec.finish(rec_out.iter().map(|p| SubExp::Var(p.name)).collect());
                self.path.pop();

                self.cur_prov = prov;
                bb.set_prov(prov);
                let mut factors = ctx.widths();
                factors.push(w);
                let c = bb.bind(
                    "suff_outer",
                    Type::bool(),
                    Exp::CmpThreshold { factors, threshold: t_top },
                );
                let ret_tys: Vec<Type> = out.iter().map(|p| p.ty.clone()).collect();
                bb.push(Stm::new(
                    out.to_vec(),
                    Exp::If { cond: SubExp::Var(c), tb: e_top, fb: e_rec, ret: ret_tys },
                ));
            }
        }
    }

    /// The `e_rec` of rule G9: decompose `redomap op f` into `map f`
    /// followed by `reduce op` and keep flattening both.
    #[allow(clippy::too_many_arguments)]
    fn redomap_decomposed(
        &mut self,
        ctx: &Ctx,
        level: Level,
        w: SubExp,
        op: &Lambda,
        map_lam: &Lambda,
        nes: &[SubExp],
        arrs: &[VName],
        out: &[Param],
        bb: &mut BodyBuilder,
        is_scan: bool,
    ) {
        let map_lam = rename_lambda(map_lam);
        let ys: Vec<Param> = map_lam
            .ret
            .iter()
            .map(|t| Param::fresh("ys", t.array_of(w)))
            .collect();
        let map_stm = Stm::new(
            ys.clone(),
            Exp::Soac(Soac::Map { w, lam: map_lam.clone(), arrs: arrs.to_vec() }),
        );
        let red_tys: Vec<Type> = if is_scan {
            map_lam.ret.iter().map(|t| t.array_of(w)).collect()
        } else {
            map_lam.ret.clone()
        };
        let red_pat: Vec<Param> = out
            .iter()
            .zip(&red_tys)
            .map(|(p, t)| Param::fresh(&p.name.base(), t.clone()))
            .collect();
        let red_soac = if is_scan {
            Soac::Scan {
                w,
                lam: rename_lambda(op),
                nes: nes.to_vec(),
                arrs: ys.iter().map(|p| p.name).collect(),
            }
        } else {
            Soac::Reduce {
                w,
                lam: rename_lambda(op),
                nes: nes.to_vec(),
                arrs: ys.iter().map(|p| p.name).collect(),
            }
        };
        let red_stm = Stm::new(red_pat.clone(), Exp::Soac(red_soac));
        let mini = Body::new(
            vec![map_stm, red_stm],
            red_pat.iter().map(|p| SubExp::Var(p.name)).collect(),
        );
        let atoms = self.process_body(ctx, level, &mini, bb);
        for (p, a) in out.iter().zip(&atoms) {
            bb.push(Stm::single(p.name, p.ty.clone(), Exp::SubExp(*a)));
        }
    }

    // ================================================================
    // Rule G4: reduce with a vectorized operator.
    // ================================================================

    /// Does this reduce have the `reduce (map op)` shape of rule G4?
    fn g4_shape(&self, exp: &Exp) -> Option<(Lambda, SubExp)> {
        match exp {
            Exp::Soac(Soac::Reduce { lam, .. }) => self.g4_reduce_shape(lam),
            _ => None,
        }
    }

    /// Returns the inner scalar operator and the inner width, if the
    /// operator is a single map over exactly its parameters.
    fn g4_reduce_shape(&self, lam: &Lambda) -> Option<(Lambda, SubExp)> {
        if !lam.params.iter().all(|p| p.ty.is_array()) {
            return None;
        }
        if lam.body.stms.len() != 1 {
            return None;
        }
        let Exp::Soac(Soac::Map { w, lam: inner, arrs }) = &lam.body.stms[0].exp else {
            return None;
        };
        if !inner.params.iter().all(|p| p.ty.is_scalar()) {
            return None;
        }
        let param_names: Vec<VName> = lam.params.iter().map(|p| p.name).collect();
        if arrs != &param_names {
            return None;
        }
        let pat_names: Vec<SubExp> = lam.body.stms[0]
            .pat
            .iter()
            .map(|p| SubExp::Var(p.name))
            .collect();
        if lam.body.result != pat_names {
            return None;
        }
        Some((inner.clone(), *w))
    }

    /// G4: `reduce (map op) nes zs ⇒ map (λ(ne, cols..) → reduce op ne
    /// cols) nes (transpose zs..)`, then recurse on the map. The
    /// transposes and the map are fed back through `process_body`, so
    /// they are hoisted when invariant and distributed otherwise.
    #[allow(clippy::too_many_arguments)]
    fn do_g4(
        &mut self,
        ctx: &Ctx,
        level: Level,
        w: SubExp,
        inner_op: &Lambda,
        k: SubExp,
        nes: &[SubExp],
        arrs: &[VName],
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        let half = inner_op.params.len() / 2;
        assert_eq!(half, arrs.len(), "G4: operator arity mismatch");
        self.fire(
            Rule::G4,
            format!(
                "reduce (map op) over {} array(s) interchanged to map (reduce op) of transposes",
                arrs.len()
            ),
        );
        let elem_tys: Vec<Type> =
            inner_op.params[..half].iter().map(|p| p.ty.clone()).collect();

        let mut stms = Vec::new();
        let mut map_arrs: Vec<VName> = Vec::with_capacity(arrs.len() * 2);
        let mut lam_params: Vec<Param> = Vec::with_capacity(arrs.len() * 2);

        // Per-column neutral elements (e.g. from `replicate k d`).
        for (ne, t) in nes.iter().zip(&elem_tys) {
            let SubExp::Var(nv) = ne else {
                self.record_error(FlattenError::G4NeutralElement {
                    detail: format!("got constant {ne}"),
                });
                return;
            };
            map_arrs.push(*nv);
            lam_params.push(Param::fresh("ne", t.clone()));
        }
        // Transposed inputs: columns become rows.
        let mut col_params = Vec::with_capacity(arrs.len());
        for (a, t) in arrs.iter().zip(&elem_tys) {
            let tr = Param::fresh(
                &format!("{}_tr", a.base()),
                t.array_of(w).array_of(k),
            );
            stms.push(Stm::new(
                vec![tr.clone()],
                Exp::Rearrange { perm: vec![1, 0], arr: *a },
            ));
            map_arrs.push(tr.name);
            let p = Param::fresh("col", t.array_of(w));
            col_params.push(p.clone());
            lam_params.push(p);
        }

        // Body of the new map: reduce op ne cols.
        let mut lb = BodyBuilder::new();
        let red_out: Vec<Param> =
            elem_tys.iter().map(|t| Param::fresh("r", t.clone())).collect();
        lb.push(Stm::new(
            red_out.clone(),
            Exp::Soac(Soac::Reduce {
                w,
                lam: rename_lambda(inner_op),
                nes: lam_params[..half].iter().map(|p| SubExp::Var(p.name)).collect(),
                arrs: col_params.iter().map(|p| p.name).collect(),
            }),
        ));
        let lam = Lambda {
            params: lam_params,
            body: lb.finish(red_out.iter().map(|p| SubExp::Var(p.name)).collect()),
            ret: elem_tys.clone(),
        };

        let map_pat: Vec<Param> = elem_tys
            .iter()
            .map(|t| Param::fresh("g4", t.array_of(k)))
            .collect();
        stms.push(Stm::new(
            map_pat.clone(),
            Exp::Soac(Soac::Map { w: k, lam, arrs: map_arrs }),
        ));
        let mini = Body::new(stms, map_pat.iter().map(|p| SubExp::Var(p.name)).collect());
        let atoms = self.process_body(ctx, level, &mini, bb);
        for (p, a) in out.iter().zip(&atoms) {
            bb.push(Stm::single(p.name, p.ty.clone(), Exp::SubExp(*a)));
        }
    }

    // ================================================================
    // Rule G7: loop interchange (all context dimensions at once).
    // ================================================================
    fn transform_loop(
        &mut self,
        ctx: &Ctx,
        level: Level,
        exp: &Exp,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        let Exp::Loop { params, ivar, bound, body } = exp else { unreachable!() };
        for (p, _) in params {
            self.tyenv.insert(p.name, p.ty.clone());
        }
        if ctx.is_empty() {
            // Host-level loop: recurse into the body.
            let mut lb = BodyBuilder::new();
            let atoms = self.process_body(&Ctx::empty(), level, body, &mut lb);
            bb.push(Stm::new(
                out.to_vec(),
                Exp::Loop {
                    params: params.clone(),
                    ivar: *ivar,
                    bound: *bound,
                    body: lb.finish(atoms),
                },
            ));
            return;
        }

        self.fire(
            Rule::G7,
            format!(
                "loop with {} carried value(s) interchanged past {} context dim(s)",
                params.len(),
                ctx.depth()
            ),
        );
        // Expanded loop parameters and initializers.
        let widths = ctx.widths();
        let mut new_params = Vec::with_capacity(params.len());
        let mut ctx2 = ctx.clone();
        for (p, init) in params {
            let exp_ty = ctx.expand_type(&p.ty);
            let exp_param = Param::fresh(&p.name.base(), exp_ty);
            let exp_init = match init {
                SubExp::Var(v) if ctx.dom().contains(v) => {
                    SubExp::Var(ctx.expansion_of(*v).expect("checked by distributable"))
                }
                inv => {
                    // Invariant: replicate over the context space.
                    let mut cur = *inv;
                    let mut ty = p.ty.clone();
                    for wd in widths.iter().rev() {
                        ty = ty.array_of(*wd);
                        cur = SubExp::Var(bb.bind(
                            "rep",
                            ty.clone(),
                            Exp::Replicate { n: *wd, elem: cur },
                        ));
                    }
                    cur
                }
            };
            // Inside the loop, the original name is the elementwise view
            // of the expanded loop parameter.
            ctx2.bind_elementwise(p.name, &p.ty, exp_param.name);
            self.tyenv.insert(exp_param.name, exp_param.ty.clone());
            new_params.push((exp_param, exp_init));
        }

        let mut lb = BodyBuilder::new();
        let atoms = self.process_body(&ctx2, level, body, &mut lb);
        bb.push(Stm::new(
            out.to_vec(),
            Exp::Loop {
                params: new_params,
                ivar: *ivar,
                bound: *bound,
                body: lb.finish(atoms),
            },
        ));
    }

    // ================================================================
    // Rule G8: if distribution.
    // ================================================================
    fn transform_if(
        &mut self,
        ctx: &Ctx,
        level: Level,
        exp: &Exp,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        let Exp::If { cond, tb, fb, .. } = exp else { unreachable!() };
        if !ctx.is_empty() {
            self.fire(
                Rule::G8,
                format!("context of depth {} distributed across if branches", ctx.depth()),
            );
        }
        let mut tbb = BodyBuilder::new();
        let t_atoms = self.process_body(ctx, level, tb, &mut tbb);
        let mut fbb = BodyBuilder::new();
        let f_atoms = self.process_body(ctx, level, fb, &mut fbb);
        let ret: Vec<Type> = out.iter().map(|p| p.ty.clone()).collect();
        bb.push(Stm::new(
            out.to_vec(),
            Exp::If { cond: *cond, tb: tbb.finish(t_atoms), fb: fbb.finish(f_atoms), ret },
        ));
    }

    // ================================================================
    // Manifestation (rules G1/G2 and the segred/segscan analogues).
    // ================================================================
    fn manifest_segmap(
        &mut self,
        ctx: &Ctx,
        level: Level,
        body: Body,
        body_ret: Vec<Type>,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        let tiling = self.detect_tiling(ctx, level, &body);
        self.record_intra(ctx, level);
        let seg = SegOp { kind: SegKind::Map, level, ctx: ctx.to_segctx(), body, body_ret, tiling };
        self.num_segops += 1;
        bb.push(Stm::new(out.to_vec(), Exp::Seg(seg)));
    }

    #[allow(clippy::too_many_arguments)]
    fn manifest_segred(
        &mut self,
        ctx: &Ctx,
        level: Level,
        op: Lambda,
        nes: Vec<SubExp>,
        body: Body,
        body_ret: Vec<Type>,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        self.record_intra(ctx, level);
        let seg = SegOp {
            kind: SegKind::Red { op, nes },
            level,
            ctx: ctx.to_segctx(),
            body,
            body_ret,
            tiling: Tiling::None,
        };
        self.num_segops += 1;
        bb.push(Stm::new(out.to_vec(), Exp::Seg(seg)));
    }

    #[allow(clippy::too_many_arguments)]
    fn manifest_segscan(
        &mut self,
        ctx: &Ctx,
        level: Level,
        op: Lambda,
        nes: Vec<SubExp>,
        body: Body,
        body_ret: Vec<Type>,
        out: &[Param],
        bb: &mut BodyBuilder,
    ) {
        self.record_intra(ctx, level);
        let seg = SegOp {
            kind: SegKind::Scan { op, nes },
            level,
            ctx: ctx.to_segctx(),
            body,
            body_ret,
            tiling: Tiling::None,
        };
        self.num_segops += 1;
        bb.push(Stm::new(out.to_vec(), Exp::Seg(seg)));
    }

    /// While building an intra-group (`e_middle`) version, record the
    /// parallel size of each level-0 segop for the `Par(e_middle)` guard.
    fn record_intra(&mut self, ctx: &Ctx, level: Level) {
        if level == LVL_GROUP {
            if let Some(collector) = self.intra_factors.last_mut() {
                collector.push(ctx.widths());
            }
        }
    }

    /// Detect a block-tiling opportunity: a kernel with a sequentialized
    /// body that streams context-bound arrays (e.g. a sequential
    /// `redomap` over arrays bound by the map nest, as in matrix
    /// multiplication version (2), §2.2).
    fn detect_tiling(&self, ctx: &Ctx, level: Level, body: &Body) -> Tiling {
        if !self.cfg.enable_tiling || level != LVL_GRID || ctx.is_empty() {
            return Tiling::None;
        }
        let dom = ctx.dom();
        fn streams_ctx_array(body: &Body, dom: &HashSet<VName>) -> bool {
            body.stms.iter().any(|stm| match &stm.exp {
                Exp::Soac(s) => s.arrays().iter().any(|a| dom.contains(a)),
                Exp::Loop { body, .. } => streams_ctx_array(body, dom),
                Exp::If { tb, fb, .. } => {
                    streams_ctx_array(tb, dom) || streams_ctx_array(fb, dom)
                }
                _ => false,
            })
        }
        if streams_ctx_array(body, &dom) {
            Tiling::Block(self.cfg.tile_size)
        } else {
            Tiling::None
        }
    }

    /// Element type of a result atom: from the pending bindings, the
    /// context bindings, or the host-scope type environment.
    fn atom_elem_type(&mut self, ctx: &Ctx, pending: &[Stm], atom: &SubExp) -> Type {
        match atom {
            SubExp::Const(c) => Type::scalar(c.scalar_type()),
            SubExp::Var(v) => {
                for stm in pending {
                    for p in &stm.pat {
                        if p.name == *v {
                            return p.ty.clone();
                        }
                    }
                }
                for dim in &ctx.dims {
                    for (p, _) in &dim.binds {
                        if p.name == *v {
                            return p.ty.clone();
                        }
                    }
                }
                match self.tyenv.get(v) {
                    Some(t) => t.clone(),
                    None => {
                        self.record_error(FlattenError::UnknownAtomType {
                            var: v.to_string(),
                        });
                        // Placeholder so the pass can unwind to the
                        // `flatten()` error check without a Result chain.
                        Type::i64()
                    }
                }
            }
        }
    }

    /// Park the first structural failure; `flatten()` surfaces it before
    /// simplification or type checking run.
    fn record_error(&mut self, e: FlattenError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

fn count_body(body: &Body) -> usize {
    body.stms.iter().map(count_stm).sum::<usize>()
}

fn count_stm(stm: &Stm) -> usize {
    1 + match &stm.exp {
        Exp::If { tb, fb, .. } => count_body(tb) + count_body(fb),
        Exp::Loop { body, .. } => count_body(body),
        Exp::Soac(s) => match s {
            Soac::Map { lam, .. } | Soac::Reduce { lam, .. } | Soac::Scan { lam, .. } => {
                count_body(&lam.body)
            }
            Soac::Redomap { red, map, .. } | Soac::Scanomap { scan: red, map, .. } => {
                count_body(&red.body) + count_body(&map.body)
            }
        },
        Exp::Seg(seg) => {
            count_body(&seg.body)
                + match &seg.kind {
                    SegKind::Map => 0,
                    SegKind::Red { op, .. } | SegKind::Scan { op, .. } => count_body(&op.body),
                }
        }
        _ => 0,
    }
}
