//! Post-flattening simplification: copy propagation and dead-code
//! elimination.
//!
//! The distribution machinery emits alias bindings (`let x = y`) when it
//! forwards version results, and rule G6's grouping can leave sequential
//! code whose results are never consumed. Both are semantically inert —
//! the language is pure — so this pass removes them, which shrinks the
//! multi-versioned programs and makes the pretty-printed output (Fig. 6c
//! style) readable.
//!
//! The pass is applied recursively through every nested body (lambdas,
//! loop/if bodies, segop bodies and operators) and iterates to a fixed
//! point.

use flat_ir::ast::*;
use flat_ir::free::free_in_stm;
use flat_ir::subst::Subst;
use flat_ir::VName;
use std::collections::HashSet;

/// Simplify a whole program in place. Returns the number of statements
/// removed.
pub fn simplify_program(prog: &mut Program) -> usize {
    let before = count(&prog.body);
    loop {
        let mut changed = false;
        copy_propagate_body(&mut prog.body, &mut changed);
        dce_body(&mut prog.body, &mut changed);
        if !changed {
            break;
        }
    }
    before - count(&prog.body)
}

fn count(body: &Body) -> usize {
    body.stms
        .iter()
        .map(|s| {
            1 + match &s.exp {
                Exp::If { tb, fb, .. } => count(tb) + count(fb),
                Exp::Loop { body, .. } => count(body),
                Exp::Seg(seg) => count(&seg.body),
                Exp::Soac(so) => match so {
                    Soac::Map { lam, .. }
                    | Soac::Reduce { lam, .. }
                    | Soac::Scan { lam, .. } => count(&lam.body),
                    Soac::Redomap { red, map, .. }
                    | Soac::Scanomap { scan: red, map, .. } => {
                        count(&red.body) + count(&map.body)
                    }
                },
                _ => 0,
            }
        })
        .sum()
}

// ---- copy propagation -------------------------------------------------

/// Remove `let x = atom` bindings, substituting `atom` for `x` in the
/// remainder of the body. A copy of a *constant* into a multi-binding
/// pattern is left alone (cannot occur from our builders, but be safe).
fn copy_propagate_body(body: &mut Body, changed: &mut bool) {
    // First recurse into sub-bodies.
    for stm in &mut body.stms {
        copy_propagate_exp(&mut stm.exp, changed);
    }
    let mut i = 0;
    while i < body.stms.len() {
        // A copy is `let x = atom` with a single-name pattern; anything
        // else — including a malformed arity — is simply not propagated.
        let (atom, name) = match (&body.stms[i].exp, &body.stms[i].pat[..]) {
            (Exp::SubExp(a), [p]) => (*a, p.name),
            _ => {
                i += 1;
                continue;
            }
        };
        // Substituting a constant for a name used in array position
        // would be ill-formed; only propagate constants when every
        // later use is a scalar position. Conservatively: propagate
        // variables always, constants only if no array-position use.
        let ok = match atom {
            SubExp::Var(_) => true,
            SubExp::Const(_) => {
                !used_in_array_position(&body.stms[i + 1..], &body.result, name)
            }
        };
        if !ok {
            i += 1;
            continue;
        }
        body.stms.remove(i);
        let subst = Subst::of([(name, atom)]);
        for later in &mut body.stms[i..] {
            *later = subst.in_stm(later);
        }
        for r in &mut body.result {
            if *r == SubExp::Var(name) {
                *r = atom;
            }
        }
        *changed = true; // re-examine index i (shifted)
    }
}

fn used_in_array_position(stms: &[Stm], _result: &[SubExp], name: VName) -> bool {
    fn exp_uses(exp: &Exp, name: VName) -> bool {
        match exp {
            Exp::Index { arr, .. } => *arr == name,
            Exp::Rearrange { arr, .. } => *arr == name,
            Exp::Soac(so) => {
                so.arrays().contains(&name)
                    || match so {
                        Soac::Map { lam, .. }
                        | Soac::Reduce { lam, .. }
                        | Soac::Scan { lam, .. } => body_uses(&lam.body, name),
                        Soac::Redomap { red, map, .. }
                        | Soac::Scanomap { scan: red, map, .. } => {
                            body_uses(&red.body, name) || body_uses(&map.body, name)
                        }
                    }
            }
            Exp::Seg(seg) => {
                seg.ctx
                    .iter()
                    .any(|d| d.binds.iter().any(|(_, a)| *a == name))
                    || body_uses(&seg.body, name)
                    || match &seg.kind {
                        SegKind::Map => false,
                        SegKind::Red { op, .. } | SegKind::Scan { op, .. } => {
                            body_uses(&op.body, name)
                        }
                    }
            }
            Exp::If { tb, fb, .. } => body_uses(tb, name) || body_uses(fb, name),
            Exp::Loop { body, .. } => body_uses(body, name),
            _ => false,
        }
    }
    fn body_uses(body: &Body, name: VName) -> bool {
        body.stms.iter().any(|s| exp_uses(&s.exp, name))
    }
    stms.iter().any(|s| exp_uses(&s.exp, name))
}

fn copy_propagate_exp(exp: &mut Exp, changed: &mut bool) {
    match exp {
        Exp::If { tb, fb, .. } => {
            copy_propagate_body(tb, changed);
            copy_propagate_body(fb, changed);
        }
        Exp::Loop { body, .. } => copy_propagate_body(body, changed),
        Exp::Seg(seg) => {
            copy_propagate_body(&mut seg.body, changed);
            match &mut seg.kind {
                SegKind::Map => {}
                SegKind::Red { op, .. } | SegKind::Scan { op, .. } => {
                    copy_propagate_body(&mut op.body, changed)
                }
            }
        }
        Exp::Soac(so) => match so {
            Soac::Map { lam, .. } | Soac::Reduce { lam, .. } | Soac::Scan { lam, .. } => {
                copy_propagate_body(&mut lam.body, changed)
            }
            Soac::Redomap { red, map, .. } | Soac::Scanomap { scan: red, map, .. } => {
                copy_propagate_body(&mut red.body, changed);
                copy_propagate_body(&mut map.body, changed);
            }
        },
        _ => {}
    }
}

// ---- dead-code elimination --------------------------------------------

/// Remove statements none of whose bound names are used later. Every
/// expression in the language is pure, so this is always sound. (A
/// threshold comparison is only "used" by the `if` that consumes it, so
/// an unused guard disappears together with its versions — which cannot
/// happen for compiler-generated code, but keeps the invariant simple.)
fn dce_body(body: &mut Body, changed: &mut bool) {
    for stm in &mut body.stms {
        dce_exp(&mut stm.exp, changed);
    }
    // Backwards liveness.
    let mut live: HashSet<VName> = HashSet::new();
    for r in &body.result {
        if let SubExp::Var(v) = r {
            live.insert(*v);
        }
    }
    let mut keep: Vec<bool> = vec![true; body.stms.len()];
    for (i, stm) in body.stms.iter().enumerate().rev() {
        let defines_live = stm.pat.iter().any(|p| live.contains(&p.name));
        if defines_live {
            live.extend(free_in_stm(stm));
        } else {
            keep[i] = false;
        }
    }
    if keep.iter().any(|k| !k) {
        *changed = true;
        let mut it = keep.into_iter();
        // The mask is exactly stms.len() long; keep anything past it
        // rather than crash if a malformed rebuild desyncs the two.
        body.stms.retain(|_| it.next().unwrap_or(true));
    }
}

fn dce_exp(exp: &mut Exp, changed: &mut bool) {
    match exp {
        Exp::If { tb, fb, .. } => {
            dce_body(tb, changed);
            dce_body(fb, changed);
        }
        Exp::Loop { body, .. } => dce_body(body, changed),
        Exp::Seg(seg) => {
            dce_body(&mut seg.body, changed);
            match &mut seg.kind {
                SegKind::Map => {}
                SegKind::Red { op, .. } | SegKind::Scan { op, .. } => {
                    dce_body(&mut op.body, changed)
                }
            }
        }
        Exp::Soac(so) => match so {
            Soac::Map { lam, .. } | Soac::Reduce { lam, .. } | Soac::Scan { lam, .. } => {
                dce_body(&mut lam.body, changed)
            }
            Soac::Redomap { red, map, .. } | Soac::Scanomap { scan: red, map, .. } => {
                dce_body(&mut red.body, changed);
                dce_body(&mut map.body, changed);
            }
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_ir::builder::*;
    use flat_ir::interp::{run_program, Thresholds};
    use flat_ir::typecheck::check_source;
    use flat_ir::types::Type;
    use flat_ir::Value;

    #[test]
    fn removes_copies_and_dead_code() {
        let mut pb = ProgramBuilder::new("p");
        let x = pb.param("x", Type::i64());
        // y = x (copy); dead = y * 2 (unused); z = y + 1 (live).
        let y = pb.body.bind("y", Type::i64(), Exp::SubExp(SubExp::Var(x)));
        let _dead = pb.body.binop(BinOp::Mul, y, SubExp::i64(2), Type::i64());
        let z = pb.body.binop(BinOp::Add, y, SubExp::i64(1), Type::i64());
        let mut prog = pb.finish(vec![SubExp::Var(z)], vec![Type::i64()]);
        let removed = simplify_program(&mut prog);
        assert_eq!(removed, 2, "{}", flat_ir::pretty::program(&prog));
        assert_eq!(prog.body.stms.len(), 1);
        check_source(&prog).unwrap();
        let out = run_program(&prog, &[Value::i64_(5)], &Thresholds::new()).unwrap();
        assert_eq!(out, vec![Value::i64_(6)]);
    }

    #[test]
    fn copy_of_result_propagates_to_result_atom() {
        let mut pb = ProgramBuilder::new("p");
        let x = pb.param("x", Type::f64());
        let y = pb.body.bind("y", Type::f64(), Exp::SubExp(SubExp::Var(x)));
        let mut prog = pb.finish(vec![SubExp::Var(y)], vec![Type::f64()]);
        simplify_program(&mut prog);
        assert!(prog.body.stms.is_empty());
        assert_eq!(prog.body.result, vec![SubExp::Var(x)]);
    }

    #[test]
    fn constant_copy_not_propagated_into_array_position() {
        // let n = 4; let ys = iota n  — n is scalar use, fine.
        // let a = <const>; rearrange a — would be ill-formed; the copy
        // must be kept. (Constructed artificially.)
        let mut pb = ProgramBuilder::new("p");
        let arr = pb.param("arr", Type::i64().array_of(SubExp::i64(2)));
        let alias = pb.body.bind(
            "alias",
            Type::i64().array_of(SubExp::i64(2)),
            Exp::SubExp(SubExp::Var(arr)),
        );
        let r = pb.body.bind(
            "r",
            Type::i64().array_of(SubExp::i64(2)),
            Exp::Rearrange { perm: vec![0], arr: alias },
        );
        let mut prog = pb.finish(
            vec![SubExp::Var(r)],
            vec![Type::i64().array_of(SubExp::i64(2))],
        );
        simplify_program(&mut prog);
        // Variable copies into array positions are fine to propagate.
        assert_eq!(prog.body.stms.len(), 1);
        match &prog.body.stms[0].exp {
            Exp::Rearrange { arr: a, .. } => assert_eq!(*a, arr),
            other => panic!("unexpected {other:?}"),
        }
        check_source(&prog).unwrap();
    }

    #[test]
    fn simplifies_inside_nested_bodies() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.size_param("n");
        let xs = pb.param("xs", Type::i64().array_of(SubExp::Var(n)));
        let mut lb = LambdaBuilder::new();
        let x = lb.param("x", Type::i64());
        let cp = lb.body.bind("cp", Type::i64(), Exp::SubExp(SubExp::Var(x)));
        let _dead = lb.body.binop(BinOp::Mul, cp, SubExp::i64(3), Type::i64());
        let r = lb.body.binop(BinOp::Add, cp, SubExp::i64(1), Type::i64());
        let lam = lb.finish(vec![SubExp::Var(r)], vec![Type::i64()]);
        let ys = pb.body.bind(
            "ys",
            Type::i64().array_of(SubExp::Var(n)),
            Exp::Soac(Soac::Map { w: SubExp::Var(n), lam, arrs: vec![xs] }),
        );
        let mut prog = pb.finish(
            vec![SubExp::Var(ys)],
            vec![Type::i64().array_of(SubExp::Var(n))],
        );
        let removed = simplify_program(&mut prog);
        assert_eq!(removed, 2);
        let out = run_program(
            &prog,
            &[Value::i64_(2), Value::i64_vec(vec![10, 20])],
            &Thresholds::new(),
        )
        .unwrap();
        assert_eq!(out, vec![Value::i64_vec(vec![11, 21])]);
    }

    #[test]
    fn fixed_point_handles_copy_chains() {
        let mut pb = ProgramBuilder::new("p");
        let x = pb.param("x", Type::i64());
        let a = pb.body.bind("a", Type::i64(), Exp::SubExp(SubExp::Var(x)));
        let b = pb.body.bind("b", Type::i64(), Exp::SubExp(SubExp::Var(a)));
        let c = pb.body.bind("c", Type::i64(), Exp::SubExp(SubExp::Var(b)));
        let mut prog = pb.finish(vec![SubExp::Var(c)], vec![Type::i64()]);
        simplify_program(&mut prog);
        assert!(prog.body.stms.is_empty());
        assert_eq!(prog.body.result, vec![SubExp::Var(x)]);
    }
}
