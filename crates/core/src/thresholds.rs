//! Threshold parameters and the branching tree of code versions.
//!
//! Every application of rule G3/G9 mints fresh threshold parameters. Like
//! Futhark's implementation, each threshold records the *path* of
//! ancestor comparisons under which its guard is reachable — this is the
//! branching-tree structure (Fig. 5) that the autotuner exploits to
//! short-circuit duplicate parameter assignments (§4.2).

use flat_ir::prov::Prov;
use flat_ir::ThresholdId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// What a threshold guards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThresholdKind {
    /// "Is the outer parallelism alone sufficient?" — guards `e_top`.
    SuffOuter,
    /// "Is outer × intra-group parallelism sufficient?" — guards
    /// `e_middle`.
    SuffIntra,
}

/// Metadata for one threshold parameter.
#[derive(Clone, Debug)]
pub struct ThresholdInfo {
    pub id: ThresholdId,
    /// Human-readable name, e.g. `suff_outer_par_2`.
    pub name: String,
    pub kind: ThresholdKind,
    /// The comparisons (and their required outcomes) that must hold for
    /// this threshold's guard to be evaluated at run time.
    pub path: Vec<(ThresholdId, bool)>,
    /// Provenance of the source construct (map nest / redomap) whose
    /// versions this threshold guards.
    pub prov: Prov,
}

/// The registry of all thresholds minted while flattening one program.
#[derive(Clone, Debug, Default)]
pub struct ThresholdRegistry {
    infos: Vec<ThresholdInfo>,
}

impl ThresholdRegistry {
    pub fn new() -> ThresholdRegistry {
        ThresholdRegistry::default()
    }

    pub fn fresh(
        &mut self,
        kind: ThresholdKind,
        path: &[(ThresholdId, bool)],
    ) -> ThresholdId {
        self.fresh_at(kind, path, Prov::UNKNOWN)
    }

    /// Mint a threshold recording the provenance of the construct whose
    /// versions it guards.
    pub fn fresh_at(
        &mut self,
        kind: ThresholdKind,
        path: &[(ThresholdId, bool)],
        prov: Prov,
    ) -> ThresholdId {
        let id = ThresholdId(self.infos.len() as u32);
        let prefix = match kind {
            ThresholdKind::SuffOuter => "suff_outer_par",
            ThresholdKind::SuffIntra => "suff_intra_par",
        };
        self.infos.push(ThresholdInfo {
            id,
            name: format!("{prefix}_{}", id.0),
            kind,
            path: path.to_vec(),
            prov,
        });
        id
    }

    /// Overwrite a threshold's name. The compiler itself never renames
    /// thresholds; this exists so `flat-verify`'s negative tests can
    /// corrupt a registry deliberately (rule V201) — and so external
    /// tools could attach semantic names if they ever need to.
    pub fn set_name(&mut self, id: ThresholdId, name: impl Into<String>) {
        self.infos[id.0 as usize].name = name.into();
    }

    pub fn len(&self) -> usize {
        self.infos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    pub fn ids(&self) -> impl Iterator<Item = ThresholdId> + '_ {
        self.infos.iter().map(|i| i.id)
    }

    pub fn info(&self, id: ThresholdId) -> &ThresholdInfo {
        &self.infos[id.0 as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = &ThresholdInfo> {
        self.infos.iter()
    }

    /// The children of a node in the branching tree: thresholds whose
    /// path is exactly `parent_path` (root: empty path).
    pub fn children_of(&self, parent_path: &[(ThresholdId, bool)]) -> Vec<&ThresholdInfo> {
        self.infos
            .iter()
            .filter(|i| i.path == parent_path)
            .collect()
    }

    /// An upper bound on the number of distinct code-version paths: the
    /// number of leaves of the branching tree.
    pub fn num_versions(&self) -> usize {
        // Count leaves by walking the tree. Several thresholds sharing
        // the same path are independent version choices at distinct
        // program points, so their leaf counts multiply.
        fn leaves(reg: &ThresholdRegistry, path: &[(ThresholdId, bool)]) -> usize {
            let kids = reg.children_of(path);
            if kids.is_empty() {
                return 1;
            }
            kids.iter()
                .map(|k| {
                    let mut t = path.to_vec();
                    t.push((k.id, true));
                    let mut f = path.to_vec();
                    f.push((k.id, false));
                    leaves(reg, &t) + leaves(reg, &f)
                })
                .product()
        }
        leaves(self, &[])
    }

    /// Render the branching tree in the style of the paper's Fig. 5.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_level(&mut out, &[], 0);
        out
    }

    fn render_level(&self, out: &mut String, path: &[(ThresholdId, bool)], depth: usize) {
        for info in self.children_of(path) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            let _ = writeln!(out, "{} ({})", info.name, info.id);
            let mut t = path.to_vec();
            t.push((info.id, true));
            if !self.children_of(&t).is_empty() {
                for _ in 0..depth + 1 {
                    out.push_str("  ");
                }
                out.push_str("[true]\n");
                self.render_level(out, &t, depth + 2);
            }
            let mut f = path.to_vec();
            f.push((info.id, false));
            if !self.children_of(&f).is_empty() {
                for _ in 0..depth + 1 {
                    out.push_str("  ");
                }
                out.push_str("[false]\n");
                self.render_level(out, &f, depth + 2);
            }
        }
    }

    /// Canonicalize a recorded execution path (sequence of comparisons
    /// with outcomes) into a signature usable as a memoization key.
    pub fn path_signature(path: &[(ThresholdId, bool)]) -> Vec<(u32, bool)> {
        let mut seen: HashMap<u32, bool> = HashMap::new();
        for (id, taken) in path {
            seen.entry(id.0).or_insert(*taken);
        }
        let mut sig: Vec<(u32, bool)> = seen.into_iter().collect();
        sig.sort_unstable();
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thresholds_are_sequential_and_named() {
        let mut reg = ThresholdRegistry::new();
        let a = reg.fresh(ThresholdKind::SuffOuter, &[]);
        let b = reg.fresh(ThresholdKind::SuffIntra, &[(a, false)]);
        assert_eq!(a, ThresholdId(0));
        assert_eq!(b, ThresholdId(1));
        assert_eq!(reg.info(a).name, "suff_outer_par_0");
        assert_eq!(reg.info(b).name, "suff_intra_par_1");
        assert_eq!(reg.info(b).path, vec![(a, false)]);
    }

    #[test]
    fn children_and_tree_rendering() {
        let mut reg = ThresholdRegistry::new();
        let a = reg.fresh(ThresholdKind::SuffOuter, &[]);
        let _b = reg.fresh(ThresholdKind::SuffIntra, &[(a, false)]);
        assert_eq!(reg.children_of(&[]).len(), 1);
        assert_eq!(reg.children_of(&[(a, false)]).len(), 1);
        assert_eq!(reg.children_of(&[(a, true)]).len(), 0);
        let tree = reg.render_tree();
        assert!(tree.contains("suff_outer_par_0"));
        assert!(tree.contains("[false]"));
    }

    #[test]
    fn version_counting() {
        let mut reg = ThresholdRegistry::new();
        assert_eq!(reg.num_versions(), 1);
        let a = reg.fresh(ThresholdKind::SuffOuter, &[]);
        assert_eq!(reg.num_versions(), 2);
        let _ = reg.fresh(ThresholdKind::SuffIntra, &[(a, false)]);
        assert_eq!(reg.num_versions(), 3);
    }

    #[test]
    fn path_signature_dedups_and_sorts() {
        let a = ThresholdId(3);
        let b = ThresholdId(1);
        let sig = ThresholdRegistry::path_signature(&[(a, true), (b, false), (a, true)]);
        assert_eq!(sig, vec![(1, false), (3, true)]);
    }
}

/// Serialize a threshold assignment in the `name=value` line format of
/// Futhark's `.tuning` files, using this registry's names. Thresholds
/// not present in the assignment are written with their default.
pub fn write_tuning(reg: &ThresholdRegistry, t: &flat_ir::interp::Thresholds) -> String {
    let mut out = String::new();
    for info in reg.iter() {
        let _ = writeln!(out, "{}={}", info.name, t.get(info.id));
    }
    out
}

/// Parse a `.tuning` file against this registry. Unknown names are an
/// error; missing names keep the default.
pub fn read_tuning(
    reg: &ThresholdRegistry,
    text: &str,
) -> Result<flat_ir::interp::Thresholds, String> {
    let mut t = flat_ir::interp::Thresholds::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected name=value", lineno + 1))?;
        let info = reg
            .iter()
            .find(|i| i.name == name.trim())
            .ok_or_else(|| format!("line {}: unknown threshold `{}`", lineno + 1, name))?;
        let v: i64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        t.set(info.id, v);
    }
    Ok(t)
}

#[cfg(test)]
mod tuning_file_tests {
    use super::*;
    use flat_ir::interp::Thresholds;

    fn reg2() -> (ThresholdRegistry, ThresholdId, ThresholdId) {
        let mut reg = ThresholdRegistry::new();
        let a = reg.fresh(ThresholdKind::SuffOuter, &[]);
        let b = reg.fresh(ThresholdKind::SuffIntra, &[(a, false)]);
        (reg, a, b)
    }

    #[test]
    fn round_trips() {
        let (reg, a, b) = reg2();
        let t = Thresholds::new().with(a, 123).with(b, 1 << 20);
        let text = write_tuning(&reg, &t);
        let back = read_tuning(&reg, &text).unwrap();
        assert_eq!(back.get(a), 123);
        assert_eq!(back.get(b), 1 << 20);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (reg, a, _) = reg2();
        let t = read_tuning(&reg, "# a comment\n\nsuff_outer_par_0=7\n").unwrap();
        assert_eq!(t.get(a), 7);
    }

    #[test]
    fn unknown_name_is_an_error() {
        let (reg, _, _) = reg2();
        assert!(read_tuning(&reg, "nope=1").is_err());
    }

    #[test]
    fn malformed_line_is_an_error() {
        let (reg, _, _) = reg2();
        assert!(read_tuning(&reg, "suff_outer_par_0").is_err());
        assert!(read_tuning(&reg, "suff_outer_par_0=abc").is_err());
    }

    #[test]
    fn missing_names_keep_defaults() {
        let (reg, a, b) = reg2();
        let t = read_tuning(&reg, &format!("{}=5\n", reg.info(a).name)).unwrap();
        assert_eq!(t.get(a), 5);
        assert_eq!(t.get(b), Thresholds::DEFAULT);
    }
}
