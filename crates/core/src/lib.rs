//! # incflat
//!
//! Moderate and incremental flattening for regular nested data
//! parallelism — the core compilation passes of *Incremental Flattening
//! for Nested Data Parallelism* (PPoPP '19).
//!
//! The entry points are [`flatten()`] with a [`FlattenConfig`], or the
//! convenience wrappers [`flatten_moderate`] (the PLDI '17 baseline) and
//! [`flatten_incremental`] (the paper's contribution). The result bundles
//! the multi-versioned target program with its [`ThresholdRegistry`] —
//! the branching-tree structure that the autotuner consumes.
//!
//! ```
//! use incflat::{flatten_incremental, flatten_moderate};
//!
//! let src = "
//! def matmul [n][m][p] (xss: [n][m]f32) (yss: [m][p]f32): [n][p]f32 =
//!   map (\\xs -> map (\\ys -> redomap (+) (*) 0f32 xs ys) (transpose yss)) xss
//! ";
//! let prog = flat_lang::compile(src, "matmul").unwrap();
//! let mf = flatten_moderate(&prog).unwrap();
//! let incr = flatten_incremental(&prog).unwrap();
//! assert_eq!(mf.thresholds.len(), 0);
//! assert!(incr.thresholds.len() >= 2); // multiple guarded versions
//! ```

pub mod ctx;
pub mod flatten;
pub mod rules;
pub mod simplify;
pub mod thresholds;

pub use flatten::{
    flatten, flatten_incremental, flatten_moderate, CodeStats, FlattenConfig, FlattenError,
    FlattenMode, Flattened,
};
pub use rules::{Rule, RuleFiring, RuleTrace};
pub use simplify::simplify_program;
pub use thresholds::{read_tuning, write_tuning, ThresholdInfo, ThresholdKind, ThresholdRegistry};
