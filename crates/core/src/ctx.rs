//! The map-nest context Σ maintained during flattening.
//!
//! A context is a stack of dimensions `⟨x̄ ∈ ȳs⟩` (outermost first),
//! exactly as in the paper. Beyond the paper's notation, the
//! implementation also tracks, per elementwise-bound name, the fully
//! Σ-expanded array it came from (when one exists) — this is what rule
//! G6's context extension amounts to operationally, and it is how later
//! statements of a distributed body see the results of earlier ones.

use flat_ir::ast::{CtxDim, SubExp};
use flat_ir::types::{Param, Type};
use flat_ir::VName;
use std::collections::{HashMap, HashSet};

/// One dimension of the context.
#[derive(Clone, Debug)]
pub struct CtxLevel {
    pub width: SubExp,
    pub binds: Vec<(Param, VName)>,
}

/// The context Σ, plus bookkeeping for distribution.
#[derive(Clone, Debug, Default)]
pub struct Ctx {
    pub dims: Vec<CtxLevel>,
    /// For elementwise-bound names with a known full expansion:
    /// `expansions[x]` is an array of rank `depth + rank(x)` holding `x`
    /// for every point of the context space.
    expansions: HashMap<VName, VName>,
}

impl Ctx {
    pub fn empty() -> Ctx {
        Ctx::default()
    }

    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    /// Widths of all dimensions, outermost first — the factors of
    /// `Par(Σ)`.
    pub fn widths(&self) -> Vec<SubExp> {
        self.dims.iter().map(|d| d.width).collect()
    }

    /// All names bound by the context (the `Dom(Σ)` of the paper).
    pub fn dom(&self) -> HashSet<VName> {
        self.dims
            .iter()
            .flat_map(|d| d.binds.iter().map(|(p, _)| p.name))
            .collect()
    }

    /// Is the given set of free variables invariant to this context?
    pub fn invariant(&self, free: &HashSet<VName>) -> bool {
        let dom = self.dom();
        free.is_disjoint(&dom)
    }

    /// Extend with a new innermost dimension binding `params[i] ∈
    /// arrs[i]`. `expansion_roots[i]`, when known, is the full expansion
    /// of `arrs[i]` over the *existing* dimensions (so the new param's
    /// expansion over the extended context is that same array).
    pub fn push_dim(&mut self, width: SubExp, binds: Vec<(Param, VName)>) {
        // A bound array that is itself elementwise-bound with a known
        // expansion gives the new parameter a known expansion too; an
        // invariant array gives one only when the outer context is empty.
        for (p, arr) in &binds {
            if self.dims.is_empty() {
                self.expansions.insert(p.name, *arr);
            } else if let Some(exp) = self.expansions.get(arr).copied() {
                self.expansions.insert(p.name, exp);
            }
        }
        self.dims.push(CtxLevel { width, binds });
    }

    /// Record that `elem_name` (of element type `elem_ty`) is available
    /// elementwise from the Σ-expanded array `expanded`: threads a chain
    /// of fresh bindings through every dimension (rule G6's Σ').
    pub fn bind_elementwise(&mut self, elem_name: VName, elem_ty: &Type, expanded: VName) {
        assert!(!self.dims.is_empty(), "bind_elementwise on empty context");
        let widths = self.widths();
        let mut source = expanded;
        let depth = self.dims.len();
        for (k, dim) in self.dims.iter_mut().enumerate() {
            let is_innermost = k == depth - 1;
            let bound_ty = {
                // Type of the array at this point: elem_ty with the
                // remaining inner widths prepended.
                let remaining = &widths[k + 1..];
                elem_ty.array_of_dims(remaining)
            };
            let param = if is_innermost {
                Param::new(elem_name, bound_ty)
            } else {
                Param::fresh(&elem_name.base(), bound_ty)
            };
            let pname = param.name;
            dim.binds.push((param, source));
            source = pname;
        }
        self.expansions.insert(elem_name, expanded);
    }

    /// The known full expansion of a name, if any.
    pub fn expansion_of(&self, name: VName) -> Option<VName> {
        self.expansions.get(&name).copied()
    }

    /// Drop the innermost dimension, returning it (for the map
    /// reconstitution of rules G7/G8).
    pub fn pop_dim(&mut self) -> CtxLevel {
        self.dims.pop().expect("pop_dim on empty context")
    }

    /// Expand a type over the context space.
    pub fn expand_type(&self, t: &Type) -> Type {
        t.array_of_dims(&self.widths())
    }

    /// Convert to the target language's context representation.
    pub fn to_segctx(&self) -> Vec<CtxDim> {
        self.dims
            .iter()
            .map(|d| CtxDim { width: d.width, binds: d.binds.clone() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_ir::ast::SubExp;
    use flat_ir::types::Type;

    #[test]
    fn push_and_widths() {
        let n = VName::fresh("n");
        let m = VName::fresh("m");
        let xss = VName::fresh("xss");
        let xs = Param::fresh("xs", Type::f32().array_of(SubExp::Var(m)));
        let mut ctx = Ctx::empty();
        ctx.push_dim(SubExp::Var(n), vec![(xs.clone(), xss)]);
        let x = Param::fresh("x", Type::f32());
        ctx.push_dim(SubExp::Var(m), vec![(x.clone(), xs.name)]);
        assert_eq!(ctx.depth(), 2);
        assert_eq!(ctx.widths(), vec![SubExp::Var(n), SubExp::Var(m)]);
        assert!(ctx.dom().contains(&xs.name));
        assert!(ctx.dom().contains(&x.name));
        // Chained expansions: x's expansion is the root array.
        assert_eq!(ctx.expansion_of(xs.name), Some(xss));
        assert_eq!(ctx.expansion_of(x.name), Some(xss));
    }

    #[test]
    fn bind_elementwise_threads_through_levels() {
        let n = VName::fresh("n");
        let m = VName::fresh("m");
        let xss = VName::fresh("xss");
        let xs = Param::fresh("xs", Type::f32().array_of(SubExp::Var(m)));
        let x = Param::fresh("x", Type::f32());
        let mut ctx = Ctx::empty();
        ctx.push_dim(SubExp::Var(n), vec![(xs.clone(), xss)]);
        ctx.push_dim(SubExp::Var(m), vec![(x, xs.name)]);

        let y = VName::fresh("y");
        let y_exp = VName::fresh("y_exp");
        ctx.bind_elementwise(y, &Type::f64(), y_exp);
        // The outer dimension gained a binding from y_exp; the inner one
        // binds y itself from the intermediate.
        assert_eq!(ctx.dims[0].binds.len(), 2);
        assert_eq!(ctx.dims[0].binds[1].1, y_exp);
        assert_eq!(ctx.dims[1].binds[1].0.name, y);
        assert_eq!(ctx.dims[1].binds[1].1, ctx.dims[0].binds[1].0.name);
        // Intermediate has type [m]f64.
        assert_eq!(
            ctx.dims[0].binds[1].0.ty,
            Type::f64().array_of(SubExp::Var(m))
        );
        assert_eq!(ctx.expansion_of(y), Some(y_exp));
    }

    #[test]
    fn invariance_check() {
        let n = VName::fresh("n");
        let xs_arr = VName::fresh("xs");
        let x = Param::fresh("x", Type::f32());
        let mut ctx = Ctx::empty();
        ctx.push_dim(SubExp::Var(n), vec![(x.clone(), xs_arr)]);
        let mut free = HashSet::new();
        free.insert(xs_arr);
        assert!(ctx.invariant(&free));
        free.insert(x.name);
        assert!(!ctx.invariant(&free));
    }

    #[test]
    fn expand_type_prepends_widths() {
        let n = VName::fresh("n");
        let arr = VName::fresh("a");
        let p = Param::fresh("x", Type::f32());
        let mut ctx = Ctx::empty();
        ctx.push_dim(SubExp::Var(n), vec![(p, arr)]);
        let t = ctx.expand_type(&Type::f32().array_of(SubExp::i64(4)));
        assert_eq!(t.dims, vec![SubExp::Var(n), SubExp::i64(4)]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use flat_ir::ast::SubExp;
    use flat_ir::types::Type;

    #[test]
    fn pop_dim_returns_innermost() {
        let n = VName::fresh("n");
        let m = VName::fresh("m");
        let a = VName::fresh("a");
        let p1 = Param::fresh("x1", Type::f32().array_of(SubExp::Var(m)));
        let p2 = Param::fresh("x2", Type::f32());
        let mut ctx = Ctx::empty();
        ctx.push_dim(SubExp::Var(n), vec![(p1.clone(), a)]);
        ctx.push_dim(SubExp::Var(m), vec![(p2.clone(), p1.name)]);
        let popped = ctx.pop_dim();
        assert_eq!(popped.width, SubExp::Var(m));
        assert_eq!(popped.binds[0].0.name, p2.name);
        assert_eq!(ctx.depth(), 1);
        assert!(ctx.dom().contains(&p1.name));
        assert!(!ctx.dom().contains(&p2.name));
    }

    #[test]
    fn to_segctx_mirrors_dims() {
        let n = VName::fresh("n");
        let a = VName::fresh("a");
        let p = Param::fresh("x", Type::f32());
        let mut ctx = Ctx::empty();
        ctx.push_dim(SubExp::Var(n), vec![(p.clone(), a)]);
        let seg = ctx.to_segctx();
        assert_eq!(seg.len(), 1);
        assert_eq!(seg[0].width, SubExp::Var(n));
        assert_eq!(seg[0].binds[0].1, a);
    }

    #[test]
    #[should_panic(expected = "empty context")]
    fn bind_elementwise_requires_nonempty() {
        let mut ctx = Ctx::empty();
        ctx.bind_elementwise(VName::fresh("v"), &Type::f32(), VName::fresh("e"));
    }
}
