//! Rule-firing trace for the flattening pass.
//!
//! The paper's argument is mechanistic: every guarded code version
//! exists because a specific inference rule of Figs. 3–4 fired at a
//! specific program point. [`RuleTrace`] records those firings — a count
//! per rule plus an ordered log with human-readable notes — so
//! `flatc flatten --explain` can show exactly which rule produced each
//! piece of the multi-versioned program, and tests can pin the expected
//! derivation of known examples (e.g. the Fig. 5 program).

use flat_ir::prov::Prov;
use std::fmt;

/// The flattening rules, as numbered in this reproduction:
///
/// | rule | meaning |
/// |------|---------|
/// | G0   | distribute a map at the intra-group level (no level below to version for) |
/// | G1   | manifest leftover sequential code as a `segmap` (pending flush / trailing results) |
/// | G2   | manifest a parallelism-free map body as a `segmap` |
/// | G3   | guarded versions `e_top`/`e_middle`/`e_flat` at a map with inner parallelism |
/// | G4   | interchange `reduce (map op)` into `map (reduce op)` over transposed inputs |
/// | G5   | lift a `rearrange` of a context-bound array to a host-level rearrange |
/// | G6   | moderate-mode distribution of a map with inner parallelism |
/// | G7   | interchange a map nest into a `loop`, expanding loop-carried values |
/// | G8   | distribute a context across `if` branches |
/// | G9   | guarded versions `e_top`/`e_rec` at a `redomap`/`scanomap` with inner parallelism |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    G0,
    G1,
    G2,
    G3,
    G4,
    G5,
    G6,
    G7,
    G8,
    G9,
}

pub const NUM_RULES: usize = 10;

impl Rule {
    pub const ALL: [Rule; NUM_RULES] = [
        Rule::G0,
        Rule::G1,
        Rule::G2,
        Rule::G3,
        Rule::G4,
        Rule::G5,
        Rule::G6,
        Rule::G7,
        Rule::G8,
        Rule::G9,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::G0 => "G0",
            Rule::G1 => "G1",
            Rule::G2 => "G2",
            Rule::G3 => "G3",
            Rule::G4 => "G4",
            Rule::G5 => "G5",
            Rule::G6 => "G6",
            Rule::G7 => "G7",
            Rule::G8 => "G8",
            Rule::G9 => "G9",
        }
    }

    /// One-line description used by `flatten --explain`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::G0 => "distribute map at intra-group level",
            Rule::G1 => "manifest sequential code as segmap",
            Rule::G2 => "manifest parallelism-free map body as segmap",
            Rule::G3 => "guarded versions e_top/e_middle/e_flat at map",
            Rule::G4 => "interchange reduce of vectorized operator",
            Rule::G5 => "lift rearrange of context-bound array",
            Rule::G6 => "moderate-mode distribution of map",
            Rule::G7 => "interchange map nest into loop",
            Rule::G8 => "distribute context across if branches",
            Rule::G9 => "guarded versions e_top/e_rec at redomap",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule application, in firing order.
#[derive(Clone, Debug)]
pub struct RuleFiring {
    pub rule: Rule,
    /// Where/why: e.g. `"map nest depth 2 → t0 guards e_top"`.
    pub note: String,
    /// Provenance of the source construct the rule fired at
    /// ([`Prov::UNKNOWN`] for programs built without a frontend).
    pub prov: Prov,
}

/// Counts and ordered log of rule firings for one `flatten()` run.
#[derive(Clone, Debug, Default)]
pub struct RuleTrace {
    counts: [u64; NUM_RULES],
    firings: Vec<RuleFiring>,
}

impl RuleTrace {
    pub fn fire(&mut self, rule: Rule, note: impl Into<String>) {
        self.fire_at(rule, note, Prov::UNKNOWN);
    }

    /// Record a firing together with the provenance of the source
    /// construct it applies to.
    pub fn fire_at(&mut self, rule: Rule, note: impl Into<String>, prov: Prov) {
        self.counts[rule.index()] += 1;
        self.firings.push(RuleFiring {
            rule,
            note: note.into(),
            prov,
        });
    }

    pub fn count(&self, rule: Rule) -> u64 {
        self.counts[rule.index()]
    }

    /// `(rule, count)` for every rule, including zero counts.
    pub fn counts(&self) -> impl Iterator<Item = (Rule, u64)> + '_ {
        Rule::ALL.iter().map(|r| (*r, self.counts[r.index()]))
    }

    pub fn firings(&self) -> &[RuleFiring] {
        &self.firings
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `--explain` rendering: a count table then the firing log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "-- rule firings --");
        for (rule, count) in self.counts() {
            if count > 0 {
                let _ = writeln!(out, "  {rule}  {count:>4}x  {}", rule.describe());
            }
        }
        let _ = writeln!(out, "-- derivation --");
        for (i, f) in self.firings.iter().enumerate() {
            if f.prov.is_unknown() {
                let _ = writeln!(out, "  {i:>3}. {}  {}", f.rule, f.note);
            } else {
                let _ = writeln!(out, "  {i:>3}. {}  {}  [{}]", f.rule, f.note, f.prov.loc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_log_agree() {
        let mut t = RuleTrace::default();
        t.fire(Rule::G3, "map nest");
        t.fire(Rule::G2, "inner body");
        t.fire(Rule::G3, "second nest");
        assert_eq!(t.count(Rule::G3), 2);
        assert_eq!(t.count(Rule::G2), 1);
        assert_eq!(t.count(Rule::G9), 0);
        assert_eq!(t.total(), 3);
        assert_eq!(t.firings().len(), 3);
        let rendered = t.render();
        assert!(rendered.contains("G3"));
        assert!(rendered.contains("map nest"));
        assert!(!rendered.contains("G9"));
    }
}
