//! Semantics-preservation and structure tests for the flattening passes.
//!
//! Every test compiles a surface program, flattens it under several
//! configurations, and checks that the flattened program computes the
//! same values as the source — at multiple threshold assignments, so that
//! *every* code version is exercised (thresholds at 0 force all `Par >=
//! t` guards true; at `i64::MAX`, all false; the default sits between).

use flat_ir::interp::{run_program, Thresholds};
use flat_ir::typecheck::{check_source, check_target};
use flat_ir::value::Value;
use flat_ir::{Exp, SegKind};
use incflat::{flatten, flatten_incremental, flatten_moderate, FlattenConfig, Flattened};

fn compile(src: &str, entry: &str) -> flat_ir::Program {
    let p = flat_lang::compile(src, entry).unwrap();
    check_source(&p).unwrap();
    p
}

/// Check source ≡ flattened for the three canonical threshold settings.
fn assert_equivalent(prog: &flat_ir::Program, fl: &Flattened, args: &[Value]) {
    check_target(&fl.prog).unwrap();
    let reference = run_program(prog, args, &Thresholds::new()).unwrap();
    for setting in [0, Thresholds::DEFAULT, i64::MAX] {
        let t = Thresholds::uniform(fl.thresholds.ids(), setting);
        let got = run_program(&fl.prog, args, &t).unwrap_or_else(|e| {
            panic!(
                "flattened program failed at thresholds={setting}: {e}\n{}",
                flat_ir::pretty::program(&fl.prog)
            )
        });
        assert_eq!(reference.len(), got.len());
        for (r, g) in reference.iter().zip(&got) {
            assert!(
                r.approx_eq(g, 1e-4),
                "mismatch at thresholds={setting}:\nexpected {r}\ngot {g}\n{}",
                flat_ir::pretty::program(&fl.prog)
            );
        }
    }
}

fn all_configs() -> Vec<(&'static str, FlattenConfig)> {
    vec![
        ("moderate", FlattenConfig::moderate()),
        ("incremental", FlattenConfig::incremental()),
        ("full", FlattenConfig::full()),
    ]
}

fn check_all(src: &str, entry: &str, args: &[Value]) -> Vec<Flattened> {
    let prog = compile(src, entry);
    all_configs()
        .into_iter()
        .map(|(name, cfg)| {
            let fl = flatten(&prog, &cfg)
                .unwrap_or_else(|e| panic!("{name} flattening failed: {e}"));
            assert_equivalent(&prog, &fl, args);
            fl
        })
        .collect()
}

const MATMUL: &str = "
def matmul [n][m][p] (xss: [n][m]f32) (yss: [m][p]f32): [n][p]f32 =
  map (\\xs -> map (\\ys -> redomap (+) (*) 0f32 xs ys) (transpose yss)) xss
";

fn matmul_args() -> Vec<Value> {
    let a = Value::f32_matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let b = Value::f32_matrix(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
    vec![Value::i64_(2), Value::i64_(3), Value::i64_(2), a, b]
}

#[test]
fn matmul_all_modes_preserve_semantics() {
    let fls = check_all(MATMUL, "matmul", &matmul_args());
    // Moderate: single version, no thresholds.
    assert_eq!(fls[0].thresholds.len(), 0);
    // Incremental: at least the outer-map G3 pair and the G9 guard.
    assert!(fls[1].thresholds.len() >= 3, "got {}", fls[1].thresholds.len());
    assert!(fls[1].stats.num_versions >= 3);
    // Code growth: incremental emits more code than moderate.
    assert!(fls[1].stats.target_stms > fls[0].stats.target_stms);
}

#[test]
fn matmul_moderate_tiles_the_sequential_redomap() {
    let prog = compile(MATMUL, "matmul");
    let mf = flatten_moderate(&prog).unwrap();
    // MF produces one segmap whose body holds the sequential redomap,
    // marked as block-tileable.
    let mut found_tiled = false;
    for stm in &mf.prog.body.stms {
        if let Exp::Seg(seg) = &stm.exp {
            if seg.tiling != flat_ir::Tiling::None {
                found_tiled = true;
            }
        }
    }
    assert!(found_tiled, "{}", flat_ir::pretty::program(&mf.prog));
}

#[test]
fn matmul_incremental_contains_fully_flat_segred() {
    let prog = compile(MATMUL, "matmul");
    let incr = flatten_incremental(&prog).unwrap();
    // Version (1) of §2.2: a segred over three context dimensions.
    fn find_deep_segred(body: &flat_ir::Body) -> bool {
        body.stms.iter().any(|s| match &s.exp {
            Exp::Seg(seg) => {
                matches!(seg.kind, SegKind::Red { .. }) && seg.ctx.len() == 3
                    || find_deep_segred(&seg.body)
            }
            Exp::If { tb, fb, .. } => find_deep_segred(tb) || find_deep_segred(fb),
            Exp::Loop { body, .. } => find_deep_segred(body),
            _ => false,
        })
    }
    assert!(
        find_deep_segred(&incr.prog.body),
        "{}",
        flat_ir::pretty::program(&incr.prog)
    );
}

#[test]
fn map_only_program_needs_no_versions() {
    let src = "
def inc [n] (xs: [n]f32): [n]f32 = map (\\x -> x + 1f32) xs
";
    let fls = check_all(
        src,
        "inc",
        &[Value::i64_(4), Value::f32_vec(vec![1.0, 2.0, 3.0, 4.0])],
    );
    for fl in &fls {
        assert_eq!(fl.thresholds.len(), 0);
        assert_eq!(fl.stats.num_segops, 1);
    }
}

#[test]
fn nested_map_distributes() {
    let src = "
def addmat [n][m] (xss: [n][m]f32) (yss: [n][m]f32): [n][m]f32 =
  map (\\xs ys -> map (\\x y -> x + y) xs ys) xss yss
";
    let a = Value::f32_matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let b = Value::f32_matrix(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
    check_all(src, "addmat", &[Value::i64_(2), Value::i64_(2), a, b]);
}

#[test]
fn reduction_over_rows() {
    let src = "
def rowsums [n][m] (xss: [n][m]f64): [n]f64 =
  map (\\xs -> reduce (+) 0f64 xs) xss
";
    let a = Value::f64_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let a = Value::array_from(vec![2, 3], match a {
        Value::Array(arr) => arr.data,
        _ => unreachable!(),
    });
    check_all(src, "rowsums", &[Value::i64_(2), Value::i64_(3), a]);
}

#[test]
fn scan_inside_map_becomes_segscan() {
    let src = "
def rowscans [n][m] (xss: [n][m]i64): [n][m]i64 =
  map (\\xs -> scan (+) 0 xs) xss
";
    let a = Value::array_from(vec![2, 3], flat_ir::Buffer::I64(vec![1, 2, 3, 4, 5, 6]));
    let fls = check_all(src, "rowscans", &[Value::i64_(2), Value::i64_(3), a]);
    // The flattened (e_flat) version contains a segscan.
    fn has_segscan(body: &flat_ir::Body) -> bool {
        body.stms.iter().any(|s| match &s.exp {
            Exp::Seg(seg) => {
                matches!(seg.kind, SegKind::Scan { .. }) || has_segscan(&seg.body)
            }
            Exp::If { tb, fb, .. } => has_segscan(tb) || has_segscan(fb),
            Exp::Loop { body, .. } => has_segscan(body),
            _ => false,
        })
    }
    assert!(has_segscan(&fls[0].prog.body));
}

#[test]
fn loop_interchange_g7() {
    // Jacobi-like iteration: map around a sequential loop of maps.
    let src = "
def iterate [n][m] (xss: [n][m]f32) (k: i64): [n][m]f32 =
  map (\\xs -> loop (ys = xs) for i < k do map (\\y -> y * 0.5f32 + 1f32) ys) xss
";
    let a = Value::f32_matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let fls = check_all(
        src,
        "iterate",
        &[Value::i64_(2), Value::i64_(2), a, Value::i64_(3)],
    );
    // In moderate mode the loop must have been interchanged outside the
    // kernel: a host-level Loop containing a segmap.
    fn host_loop_with_seg(body: &flat_ir::Body) -> bool {
        body.stms.iter().any(|s| match &s.exp {
            Exp::Loop { body, .. } => body.stms.iter().any(|s| matches!(s.exp, Exp::Seg(_))),
            _ => false,
        })
    }
    assert!(
        host_loop_with_seg(&fls[0].prog.body),
        "{}",
        flat_ir::pretty::program(&fls[0].prog)
    );
}

#[test]
fn if_distribution_g8() {
    let src = "
def branchy [n][m] (xss: [n][m]f32) (flag: bool): [n]f32 =
  map (\\xs -> if flag then reduce (+) 0f32 xs else reduce max 0f32 xs) xss
";
    let a = Value::f32_matrix(2, 3, vec![1.0, 5.0, 2.0, 4.0, 0.5, 3.0]);
    check_all(
        src,
        "branchy",
        &[
            Value::i64_(2),
            Value::i64_(3),
            a.clone(),
            Value::Scalar(flat_ir::Const::Bool(true)),
        ],
    );
    check_all(
        src,
        "branchy",
        &[
            Value::i64_(2),
            Value::i64_(3),
            a,
            Value::Scalar(flat_ir::Const::Bool(false)),
        ],
    );
}

#[test]
fn g4_vectorized_reduce_interchanges() {
    // Column sums via reduce with a vectorized operator.
    let src = "
def colsums [n][m] (xss: [n][m]f32): [m]f32 =
  reduce (\\as bs -> map (\\a b -> a + b) as bs) (replicate m 0f32) xss
";
    let a = Value::f32_matrix(2, 3, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
    let fls = check_all(src, "colsums", &[Value::i64_(2), Value::i64_(3), a]);
    // After G4 the reduction happens over the transposed array: there is
    // a Rearrange at host level.
    let has_rearrange = fls[0]
        .prog
        .body
        .stms
        .iter()
        .any(|s| matches!(s.exp, Exp::Rearrange { .. }));
    assert!(
        has_rearrange,
        "{}",
        flat_ir::pretty::program(&fls[0].prog)
    );
}

#[test]
fn tuple_scans_locvolcalib_style() {
    // The tridag pattern: scans over pairs composing linear functions.
    let src = "
def tridag [m] (as: [m]f32) (bs: [m]f32): [m]f32 =
  let (cs, ds) = scan (\\(a1, b1) (a2, b2) -> (a1 * a2, a2 * b1 + b2)) (1f32, 0f32) as bs
  in map (\\c d -> c + d) cs ds

def batch [n][m] (ass: [n][m]f32) (bss: [n][m]f32): [n][m]f32 =
  map (\\as bs -> tridag as bs) ass bss
";
    let a = Value::f32_matrix(2, 3, vec![0.5, 1.5, 2.0, 1.0, 1.0, 1.0]);
    let b = Value::f32_matrix(2, 3, vec![1.0, 2.0, 0.5, 0.25, 0.5, 1.0]);
    check_all(src, "batch", &[Value::i64_(2), Value::i64_(3), a, b]);
}

#[test]
fn heston_shape_map_redomap_reduce() {
    // Three levels: map over quotes, redomap over grid, reduce inside.
    let src = "
def heston [q][g][k] (quotes: [q]f32) (grid: [g][k]f32): [q]f32 =
  map (\\quote ->
        redomap (+) (\\row -> quote * reduce (+) 0f32 row) 0f32 grid)
      quotes
";
    let quotes = Value::f32_vec(vec![1.0, 2.0]);
    let grid = Value::f32_matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let fls = check_all(
        src,
        "heston",
        &[Value::i64_(2), Value::i64_(2), Value::i64_(2), quotes, grid],
    );
    // MF exploits only the outer map (sequentialized redomap ⇒ exactly
    // one segop); IF has versions.
    assert_eq!(fls[0].stats.num_thresholds, 0);
    assert!(fls[1].stats.num_thresholds >= 2);
}

#[test]
fn host_loop_between_kernels() {
    // LocVolCalib-like: loop at the very top containing parallel maps.
    let src = "
def stepper [n][m] (xss: [n][m]f32) (t: i64): [n][m]f32 =
  loop (cur = xss) for i < t do
    map (\\xs -> map (\\x -> x * 0.9f32 + 0.1f32) xs) cur
";
    let a = Value::f32_matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    check_all(src, "stepper", &[Value::i64_(2), Value::i64_(2), a, Value::i64_(4)]);
}

#[test]
fn zero_width_maps() {
    let src = "
def inc [n] (xs: [n]f32): [n]f32 = map (\\x -> x + 1f32) xs
";
    check_all(src, "inc", &[Value::i64_(0), Value::f32_vec(vec![])]);
}

#[test]
fn replicated_invariant_result() {
    // A map returning a context-invariant value must broadcast it.
    let src = "
def broadcast [n] (xs: [n]f32) (c: f32): [n]f32 = map (\\x -> c) xs
";
    check_all(
        src,
        "broadcast",
        &[Value::i64_(3), Value::f32_vec(vec![1.0, 2.0, 3.0]), Value::f32_(7.0)],
    );
}

#[test]
fn stats_and_tree_rendering() {
    let prog = compile(MATMUL, "matmul");
    let incr = flatten_incremental(&prog).unwrap();
    let tree = incr.thresholds.render_tree();
    assert!(tree.contains("suff_outer_par_0"));
    assert!(incr.stats.num_versions >= 3);
    assert!(incr.stats.source_stms > 0);
    // The threshold guards actually appear in the program text.
    let printed = flat_ir::pretty::program(&incr.prog);
    assert!(printed.contains(">= t0"));
}

#[test]
fn moderate_has_no_thresholds_ever() {
    for (src, entry, nargs) in [
        (MATMUL, "matmul", 0),
        (
            "
def f [n][m] (xss: [n][m]f32): [n]f32 = map (\\xs -> reduce (+) 0f32 xs) xss
",
            "f",
            0,
        ),
    ] {
        let _ = nargs;
        let prog = compile(src, entry);
        let mf = flatten_moderate(&prog).unwrap();
        assert_eq!(mf.thresholds.len(), 0, "MF must be single-version");
        // No CmpThreshold expressions anywhere.
        fn no_thresholds(body: &flat_ir::Body) -> bool {
            body.stms.iter().all(|s| match &s.exp {
                Exp::CmpThreshold { .. } => false,
                Exp::If { tb, fb, .. } => no_thresholds(tb) && no_thresholds(fb),
                Exp::Loop { body, .. } => no_thresholds(body),
                Exp::Seg(seg) => no_thresholds(&seg.body),
                _ => true,
            })
        }
        assert!(no_thresholds(&mf.prog.body));
    }
}

#[test]
fn deep_nest_three_levels() {
    let src = "
def deep [a][b][c] (xsss: [a][b][c]f32): [a]f32 =
  map (\\xss -> reduce (+) 0f32 (map (\\xs -> reduce (+) 0f32 xs) xss)) xsss
";
    let v = Value::array_from(
        vec![2, 2, 2],
        flat_ir::Buffer::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]),
    );
    let fls = check_all(
        src,
        "deep",
        &[Value::i64_(2), Value::i64_(2), Value::i64_(2), v],
    );
    // Deep nests generate more versions under IF.
    assert!(fls[1].stats.num_versions > fls[0].stats.num_versions);
}

/// Fuse first, then flatten — the paper's pipeline order (§4).
#[test]
fn fusion_then_flattening() {
    let src = "
def fused [n][m] (xss: [n][m]f32): [n]f32 =
  map (\\xs -> reduce (+) 0f32 (map (\\x -> x * x) xs)) xss
";
    let mut prog = compile(src, "fused");
    let n = flat_ir::fusion::fuse_program(&mut prog);
    assert!(n >= 1, "map should fuse into reduce");
    let a = Value::f32_matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let args = [Value::i64_(2), Value::i64_(2), a];
    for (name, cfg) in all_configs() {
        let fl = flatten(&prog, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_equivalent(&prog, &fl, &args);
    }
}

#[test]
fn segop_level_discipline_holds() {
    // All top-level segops are grid-level; level-0 only inside them.
    let prog = compile(MATMUL, "matmul");
    let incr = flatten_incremental(&prog).unwrap();
    fn check_levels(body: &flat_ir::Body, inside: Option<u8>) {
        for s in &body.stms {
            match &s.exp {
                Exp::Seg(seg) => {
                    match inside {
                        None => assert_eq!(seg.level, flat_ir::LVL_GRID),
                        Some(l) => assert_eq!(seg.level + 1, l),
                    }
                    check_levels(&seg.body, Some(seg.level));
                }
                Exp::If { tb, fb, .. } => {
                    check_levels(tb, inside);
                    check_levels(fb, inside);
                }
                Exp::Loop { body, .. } => check_levels(body, inside),
                _ => {}
            }
        }
    }
    check_levels(&incr.prog.body, None);
}

#[test]
fn stm_counting_is_stable() {
    let prog = compile(MATMUL, "matmul");
    let a = flatten_incremental(&prog).unwrap();
    let b = flatten_incremental(&prog).unwrap();
    assert_eq!(a.stats.target_stms, b.stats.target_stms);
    assert_eq!(a.stats.num_segops, b.stats.num_segops);
}

#[test]
fn g5_lifts_map_transpose_to_rearrange() {
    // map transpose arr3d ⇒ rearrange [0,2,1] arr3d (rule G5).
    let src = "
def transpose_all [a][b][c] (xsss: [a][b][c]f32): [a][c][b]f32 =
  map (\\xss -> transpose xss) xsss
";
    let _prog = compile(src, "transpose_all");
    let v = flat_ir::Value::array_from(
        vec![2, 2, 3],
        flat_ir::Buffer::F32((0..12).map(|i| i as f32).collect()),
    );
    let args = [
        Value::i64_(2),
        Value::i64_(2),
        Value::i64_(3),
        v,
    ];
    let fls = check_all(src, "transpose_all", &args);
    // The lifted form is a single host-level rearrange with permutation
    // [0, 2, 1] — no kernel at all.
    let mf = &fls[0];
    let has_lifted = mf.prog.body.stms.iter().any(|s| {
        matches!(&s.exp, flat_ir::Exp::Rearrange { perm, .. } if perm == &vec![0, 2, 1])
    });
    assert!(
        has_lifted,
        "expected a lifted rearrange:\n{}",
        flat_ir::pretty::program(&mf.prog)
    );
}

#[test]
fn simplified_programs_have_no_alias_copies() {
    let prog = compile(MATMUL, "matmul");
    let incr = flatten_incremental(&prog).unwrap();
    fn no_copies(body: &flat_ir::Body) -> bool {
        body.stms.iter().all(|s| {
            !matches!(s.exp, Exp::SubExp(_))
                && match &s.exp {
                    Exp::If { tb, fb, .. } => no_copies(tb) && no_copies(fb),
                    Exp::Loop { body, .. } => no_copies(body),
                    Exp::Seg(seg) => no_copies(&seg.body),
                    _ => true,
                }
        })
    }
    assert!(
        no_copies(&incr.prog.body),
        "{}",
        flat_ir::pretty::program(&incr.prog)
    );
}

#[test]
fn simplify_can_be_disabled() {
    let prog = compile(MATMUL, "matmul");
    let cfg = incflat::FlattenConfig {
        simplify: false,
        ..incflat::FlattenConfig::incremental()
    };
    let raw = incflat::flatten(&prog, &cfg).unwrap();
    let simplified = flatten_incremental(&prog).unwrap();
    assert!(raw.stats.target_stms >= simplified.stats.target_stms);
    // Both compute the same thing.
    assert_equivalent(&prog, &raw, &matmul_args());
}

#[test]
fn scanomap_gets_g9_style_versions() {
    // A fused scanomap whose map part contains inner parallelism gets
    // the two-version treatment (manifest segscan vs. decompose).
    let src = "
def rowmeans_scan [n][m] (xss: [n][m]f32): [n]f32 =
  let sums = map (\\xs -> reduce (+) 0f32 xs) xss
  in scan (+) 0f32 sums
";
    let prog = {
        let mut p = compile(src, "rowmeans_scan");
        flat_ir::fusion::fuse_program(&mut p);
        p
    };
    // Fusion turns map+scan into a scanomap with a parallel map part.
    let has_scanomap = prog
        .body
        .stms
        .iter()
        .any(|s| matches!(s.exp, Exp::Soac(flat_ir::Soac::Scanomap { .. })));
    assert!(has_scanomap, "{}", flat_ir::pretty::program(&prog));

    let incr = flatten_incremental(&prog).unwrap();
    assert!(!incr.thresholds.is_empty());
    let a = Value::f32_matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let args = [Value::i64_(2), Value::i64_(3), a];
    assert_equivalent(&prog, &incr, &args);
    // Both extremes contain a segscan somewhere.
    fn has_segscan(body: &flat_ir::Body) -> bool {
        body.stms.iter().any(|s| match &s.exp {
            Exp::Seg(seg) => matches!(seg.kind, SegKind::Scan { .. }) || has_segscan(&seg.body),
            Exp::If { tb, fb, .. } => has_segscan(tb) || has_segscan(fb),
            Exp::Loop { body, .. } => has_segscan(body),
            _ => false,
        })
    }
    assert!(has_segscan(&incr.prog.body));
}

#[test]
fn variant_condition_ifs_are_sequentialized() {
    // G8 requires the condition invariant; a data-dependent branch
    // inside a map must stay inside the kernel.
    let src = "
def relu_rows [n][m] (xss: [n][m]f32): [n]f32 =
  map (\\xs ->
        let s = reduce (+) 0f32 xs
        in if s > 0f32 then s else 0f32 - s)
      xss
";
    let a = Value::f32_matrix(2, 2, vec![1.0, 2.0, -3.0, -4.0]);
    check_all(src, "relu_rows", &[Value::i64_(2), Value::i64_(2), a]);
}

#[test]
fn hoisting_moves_invariant_code_out_of_kernels() {
    // The transpose inside the lambda is invariant and must be hoisted
    // to the host (a single free rearrange), not replicated per thread.
    let prog = compile(MATMUL, "matmul");
    let mf = flatten_moderate(&prog).unwrap();
    let host_rearranges = mf
        .prog
        .body
        .stms
        .iter()
        .filter(|s| matches!(s.exp, Exp::Rearrange { .. }))
        .count();
    assert_eq!(host_rearranges, 1, "{}", flat_ir::pretty::program(&mf.prog));
}

#[test]
fn irregular_parallelism_is_rejected_at_runtime() {
    // Rows of different lengths per outer element are not expressible in
    // the type system; the interpreter guards against irregular values
    // anyway (defense in depth).
    use flat_ir::value::{ArrayVal, Buffer};
    // Build a "ragged" situation by lying about shapes: a [2][3] value
    // whose buffer has only 5 elements must be rejected at construction.
    let bad = std::panic::catch_unwind(|| {
        ArrayVal::new(vec![2, 3], Buffer::F32(vec![0.0; 5]))
    });
    assert!(bad.is_err());
}

/// The paper's Fig. 6c, structurally: LocVolCalib flattens into an outer
/// `if numS >= t0` (everything sequentialized into one segmap), a host
/// `numT` loop (rule G7), and — per tridag application — version 1
/// (segmap with sequential scans), version 2 (segmap over level-0
/// segscans) and version 3 (level-1 segscans).
#[test]
fn locvolcalib_matches_fig6c_structure() {
    let src = "
def tridag [m] (as: [m]f32): [m]f32 =
  let bs = scan (+) 0f32 as
  let cs = scan max 0f32 bs
  in scan min 1000000f32 cs

def locvolcalib [numS][numX][numY]
    (xsss0: [numS][numX][numY]f32) (numT: i64): [numS][numX][numY]f32 =
  map (\\xss0 -> loop (xss = xss0) for t < numT do map tridag xss) xsss0
";
    let prog = compile(src, "locvolcalib");
    let fl = flatten_incremental(&prog).unwrap();

    // Outermost statement: the t0 guard.
    let top_if = fl
        .prog
        .body
        .stms
        .iter()
        .find_map(|s| match &s.exp {
            Exp::If { tb, fb, .. } => Some((tb, fb)),
            _ => None,
        })
        .expect("top-level version guard");

    // Version "if numS >= t0": a single segmap over ⟨numS⟩ whose body is
    // fully sequential (the loop and all scans inside).
    fn count_kernels(body: &flat_ir::Body) -> usize {
        body.stms
            .iter()
            .map(|s| match &s.exp {
                Exp::Seg(_) => 1,
                Exp::If { tb, fb, .. } => count_kernels(tb) + count_kernels(fb),
                Exp::Loop { body, .. } => count_kernels(body),
                _ => 0,
            })
            .sum()
    }
    assert_eq!(count_kernels(top_if.0), 1, "e_top is one kernel");

    // The false branch eventually contains a host-level Loop (G7) whose
    // body has the per-iteration version guards.
    fn find_host_loop(body: &flat_ir::Body) -> Option<&flat_ir::Body> {
        body.stms.iter().find_map(|s| match &s.exp {
            Exp::Loop { body, .. } => Some(body),
            Exp::If { tb, fb, .. } => find_host_loop(tb).or_else(|| find_host_loop(fb)),
            _ => None,
        })
    }
    let loop_body = find_host_loop(top_if.1).expect("host numT loop (rule G7)");

    // Inside the loop: a guard whose true branch is version 1 (one
    // segmap, sequential scans inside), and whose false branch offers
    // version 2 (segmap over level-0 segscans) and version 3 (three
    // level-1 segscans).
    fn collect_segs<'a>(body: &'a flat_ir::Body, out: &mut Vec<&'a flat_ir::SegOp>) {
        for s in &body.stms {
            match &s.exp {
                Exp::Seg(seg) => {
                    out.push(seg);
                    collect_segs(&seg.body, out);
                }
                Exp::If { tb, fb, .. } => {
                    collect_segs(tb, out);
                    collect_segs(fb, out);
                }
                Exp::Loop { body, .. } => collect_segs(body, out),
                _ => {}
            }
        }
    }
    let mut segs = Vec::new();
    collect_segs(loop_body, &mut segs);
    let n_level0_scans = segs
        .iter()
        .filter(|s| s.level == flat_ir::LVL_GROUP && matches!(s.kind, SegKind::Scan { .. }))
        .count();
    let n_level1_scans = segs
        .iter()
        .filter(|s| s.level == flat_ir::LVL_GRID && matches!(s.kind, SegKind::Scan { .. }))
        .count();
    assert_eq!(n_level0_scans, 3, "version 2 has three segscan^0");
    assert_eq!(n_level1_scans, 3, "version 3 has three segscan^1");
    // Version 3's segscans run over all three dimensions.
    assert!(segs
        .iter()
        .filter(|s| s.level == flat_ir::LVL_GRID && matches!(s.kind, SegKind::Scan { .. }))
        .all(|s| s.ctx.len() == 3));
}

/// Fig. 5 of the paper: the matmul branching tree. The rule trace must
/// agree with the derivation the paper describes — two guarded
/// version splits (G3: the outer map and the distributed inner map),
/// one intra-group distribution (G0), and three manifested
/// parallelism-free bodies (G2) — and with the version/threshold stats.
#[test]
fn fig5_matmul_rule_firing_counts() {
    use incflat::Rule;
    let prog = compile(MATMUL, "matmul");
    let fl = flatten_incremental(&prog).unwrap();

    assert_eq!(fl.rules.count(Rule::G3), 2, "{}", fl.rules.render());
    assert_eq!(fl.rules.count(Rule::G0), 1, "{}", fl.rules.render());
    assert_eq!(fl.rules.count(Rule::G2), 3, "{}", fl.rules.render());
    for unused in [Rule::G4, Rule::G5, Rule::G7, Rule::G8, Rule::G9] {
        assert_eq!(fl.rules.count(unused), 0, "{unused} should not fire");
    }

    // The counters and the derivation log are two views of one trace.
    assert_eq!(fl.rules.total(), fl.rules.firings().len() as u64);

    // Each G3 firing introduces one suff_outer/suff_intra threshold pair
    // and two extra code versions (Fig. 5: 5 leaves, 4 thresholds).
    assert_eq!(fl.stats.num_thresholds, 2 * fl.rules.count(Rule::G3) as usize);
    assert_eq!(fl.stats.num_versions, 1 + 2 * fl.rules.count(Rule::G3) as usize);

    // Moderate flattening never splits versions: no G3/G9 — the maps
    // distribute unguarded (G6) and the sequentialized redomap body is
    // flushed as a plain segmap (G1).
    let mfl = flatten_moderate(&prog).unwrap();
    assert_eq!(mfl.rules.count(Rule::G3), 0);
    assert_eq!(mfl.rules.count(Rule::G9), 0);
    assert!(mfl.rules.count(Rule::G6) >= 1, "{}", mfl.rules.render());
    assert!(mfl.rules.count(Rule::G1) >= 1, "{}", mfl.rules.render());

    // The rendered explanation names every fired rule.
    let text = fl.rules.render();
    assert!(text.contains("-- rule firings --"));
    assert!(text.contains("-- derivation --"));
    assert!(text.contains("G3"));
}

// ====================================================================
// Structured flattening errors (FlattenError): malformed inputs that
// previously panicked now surface as classifiable results, so a
// differential fuzzer can record them instead of dying.
// ====================================================================

#[test]
fn g4_constant_neutral_element_is_a_structured_error() {
    use flat_ir::ast::*;
    use flat_ir::builder::{binop_lambda, ProgramBuilder};
    use flat_ir::types::{Param, Type};
    use incflat::FlattenError;

    // reduce over [n] rows of [k]i64 with a vectorized (+) operator —
    // the G4 shape — but with a *constant* neutral element, where the
    // interchange needs an array variable (e.g. a replicate).
    let mut pb = ProgramBuilder::new("g4_bad_ne");
    let n = pb.size_param("n");
    let k = pb.size_param("k");
    let row = Type::i64().array_of(SubExp::Var(k));
    let zss = pb.param("zss", row.array_of(SubExp::Var(n)));

    let acc = Param::fresh("acc", row.clone());
    let x = Param::fresh("x", row.clone());
    let m = Param::fresh("m", row.clone());
    let op_body = Body::new(
        vec![Stm::new(
            vec![m.clone()],
            Exp::Soac(Soac::Map {
                w: SubExp::Var(k),
                lam: binop_lambda(BinOp::Add, flat_ir::ScalarType::I64),
                arrs: vec![acc.name, x.name],
            }),
        )],
        vec![SubExp::Var(m.name)],
    );
    let op = Lambda { params: vec![acc, x], body: op_body, ret: vec![row.clone()] };

    let r = pb.body.bind(
        "r",
        row.clone(),
        Exp::Soac(Soac::Reduce {
            w: SubExp::Var(n),
            lam: op,
            nes: vec![SubExp::i64(0)],
            arrs: vec![zss],
        }),
    );
    let prog = pb.finish(vec![SubExp::Var(r)], vec![row]);

    for (name, cfg) in all_configs() {
        match flatten(&prog, &cfg) {
            Err(FlattenError::G4NeutralElement { .. }) => {}
            other => panic!("{name}: expected G4NeutralElement, got {other:?}"),
        }
    }
}

#[test]
fn unbound_result_atom_is_a_structured_error() {
    use flat_ir::ast::*;
    use flat_ir::builder::{binop_lambda, ProgramBuilder};
    use flat_ir::types::{Param, Type};
    use incflat::FlattenError;

    // A map whose body contains inner parallelism (so the distribution
    // machinery processes it) but whose result names a variable that is
    // bound nowhere — neither a pending statement, the context, nor the
    // host scope.
    let mut pb = ProgramBuilder::new("ghost_result");
    let n = pb.size_param("n");
    let m = pb.size_param("m");
    let row = Type::i64().array_of(SubExp::Var(m));
    let xss = pb.param("xss", row.array_of(SubExp::Var(n)));

    let xs = Param::fresh("xs", row.clone());
    let ghost = Param::fresh("ghost", Type::i64());
    let red = Param::fresh("red", Type::i64());
    let body = Body::new(
        vec![Stm::new(
            vec![red],
            Exp::Soac(Soac::Reduce {
                w: SubExp::Var(m),
                lam: binop_lambda(BinOp::Add, flat_ir::ScalarType::I64),
                nes: vec![SubExp::i64(0)],
                arrs: vec![xs.name],
            }),
        )],
        vec![SubExp::Var(ghost.name)],
    );
    let lam = Lambda { params: vec![xs], body, ret: vec![Type::i64()] };
    let out_ty = Type::i64().array_of(SubExp::Var(n));
    let r = pb.body.bind(
        "r",
        out_ty.clone(),
        Exp::Soac(Soac::Map { w: SubExp::Var(n), lam, arrs: vec![xss] }),
    );
    let prog = pb.finish(vec![SubExp::Var(r)], vec![out_ty]);

    match flatten(&prog, &FlattenConfig::incremental()) {
        Err(FlattenError::UnknownAtomType { var }) => {
            assert!(var.contains("ghost"), "wrong variable: {var}")
        }
        other => panic!("expected UnknownAtomType, got {other:?}"),
    }
}
