//! # incremental-flattening
//!
//! A Rust reproduction of *Incremental Flattening for Nested Data
//! Parallelism* (Henriksen, Thorøe, Elsman, Oancea — PPoPP 2019): a
//! nested-data-parallel IR and surface language, the moderate and
//! incremental flattening compilation passes, a simulated two-level GPU,
//! a threshold autotuner with branching-tree memoization, and the paper's
//! benchmark suite.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`ir`] (`flat-ir`) — the IR: source + target languages, type
//!   checker, reference interpreter, pretty-printer, fusion.
//! * [`lang`] (`flat-lang`) — the Futhark-like surface language.
//! * [`compiler`] (`incflat`) — moderate/incremental flattening.
//! * [`gpu`] (`gpu-sim`) — device models and the cost simulator.
//! * [`tuning`] (`autotune`) — the threshold autotuner.
//! * [`bench_suite`] (`benchmarks`) — the paper's evaluated programs.
//! * [`bench`] (`flat-bench`) — the evaluation harness: figure/table
//!   binaries, benchmark baselines, and the regression gate.
//! * [`obs`] (`flat-obs`) — tracing spans, metric registries, and the
//!   summary / JSON-lines / Chrome-trace sinks (`FLAT_OBS=...`).
//! * [`fuzz`] (`flat-fuzz`) — differential fuzzing of version
//!   equivalence: program generator, threshold-path oracle, shrinker,
//!   and the replayable failure corpus (`flatc fuzz`).
//! * [`verify`] (`flat-verify`) — the inter-pass IR verifier:
//!   well-formedness, symbolic size analysis, threshold-tree lint, and
//!   segop write-disjointness, with provenance-anchored diagnostics
//!   (`flatc lint`, `--verify`).
//! * [`exec`] (`flat-exec`) — the real multithreaded CPU executor:
//!   work-stealing kernels for `segmap`/`segred`/`segscan`, live
//!   threshold dispatch against the actual `Par(...)` degrees, and
//!   wall-clock measurement for tuning (`flatc exec`,
//!   `flatc tune --backend exec`).
//! * [`vm`] (`flat-vm`) — the compiled tier of the CPU backend: a flat
//!   register bytecode with monomorphic scalar opcodes, executed on the
//!   same work-stealing pool with `flat-exec`'s exact kernel
//!   decomposition, bitwise interchangeable with it
//!   (`flatc exec --backend vm`).
//! * [`perf`] (`flat-perf`) — the performance observatory: the
//!   persistent run archive, provenance-aligned attribution diffing,
//!   and the threshold-regret what-if profiler (`flatc perf`).
//!
//! ## Quick start
//!
//! ```
//! use incremental_flattening::prelude::*;
//!
//! // 1. Write a nested-parallel program.
//! let src = "
//! def sumrows [n][m] (xss: [n][m]f32): [n]f32 =
//!   map (\\xs -> reduce (+) 0f32 xs) xss
//! ";
//! let prog = lang::compile(src, "sumrows").unwrap();
//!
//! // 2. Flatten incrementally: a multi-versioned GPU program.
//! let flat = compiler::flatten_incremental(&prog).unwrap();
//!
//! // 3. Simulate on a device at the default thresholds.
//! let args = vec![
//!     gpu::AbsValue::known(ir::Const::I64(1024)),
//!     gpu::AbsValue::known(ir::Const::I64(1024)),
//!     gpu::AbsValue::array(vec![1024, 1024], ir::ScalarType::F32),
//! ];
//! let report = gpu::simulate(
//!     &flat.prog, &args, &Thresholds::new(), &gpu::DeviceSpec::k40(),
//! ).unwrap();
//! assert!(report.microseconds > 0.0);
//! ```

pub use autotune as tuning;
pub use benchmarks as bench_suite;
pub use flat_bench as bench;
pub use flat_exec as exec;
pub use flat_fuzz as fuzz;
pub use flat_ir as ir;
pub use flat_lang as lang;
pub use flat_obs as obs;
pub use flat_perf as perf;
pub use flat_serve as serve;
pub use flat_verify as verify;
pub use flat_vm as vm;
pub use gpu_sim as gpu;
pub use incflat as compiler;

/// Common imports for working with the reproduction.
pub mod prelude {
    pub use crate::{
        bench, bench_suite, compiler, exec, fuzz, gpu, ir, lang, obs, perf, serve, tuning,
        verify, vm,
    };
    pub use flat_ir::interp::Thresholds;
}
