//! `flatc` — a command-line front door to the incremental-flattening
//! pipeline, in the spirit of `futhark dev`.
//!
//! ```console
//! $ flatc check    prog.fut ENTRY                # parse + typecheck
//! $ flatc lint     prog.fut ENTRY [--json]       # verify after every pass
//! $ flatc compile  prog.fut ENTRY [--moderate|--full] [--no-simplify]
//!                  [--explain] [--verify]
//! $ flatc flatten  prog.fut ENTRY [--moderate|--full] [--no-simplify] [--explain]
//! $ flatc tree     prog.fut ENTRY                # threshold branching tree
//! $ flatc simulate prog.fut ENTRY --device k40 --arg 1024 --arg '[1024][512]f32'
//!                  [--profile] [--attr] [--attr-folded out.folded] [--trace out.json]
//! $ flatc exec     prog.fut ENTRY --arg 1024 [--threads N] [--reps K]
//!                  [--exec-report] [--worker-trace out.json] [--sample-log s.jsonl]
//! $ flatc tune     prog.fut ENTRY --device vega64 --dataset 16,1024 [--coverage]
//! $ flatc bench    [--check|--write] [--baseline FILE] [--tolerance PCT]
//! $ flatc fuzz     [--iters N] [--seed S] [--corpus DIR] [--failures DIR]
//! $ flatc serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//! $ flatc remote   exec prog.fut ENTRY --connect HOST:PORT [--check-local]
//! $ flatc remote   {compile|status|shutdown} ... --connect HOST:PORT
//! $ flatc serve-bench [--sessions N] [--requests N] [--rate R] [--json]
//! ```
//!
//! `--arg` accepts either an integer (an `i64` scalar, typically a size)
//! or an array shape like `[1024][512]f32`. `flatc tune` takes several
//! `--dataset` options, each a comma-separated list of such arguments.
//!
//! Observability: `--explain` prints the G0–G9 rule derivation,
//! `--profile` prints a per-kernel table, `--attr` prints the
//! source-level cycle attribution tree (and `--attr-folded FILE` writes
//! flamegraph-compatible folded stacks), `--coverage` prints the
//! per-dataset path-coverage report after tuning, `--trace FILE` writes
//! a Perfetto-loadable Chrome trace (simulate) or per-evaluation JSON
//! lines (tune), and the `FLAT_OBS` environment variable attaches
//! summary/json/trace/folded sinks to any command (see
//! docs/observability.md). `--quiet` suppresses informational stderr
//! output and the `FLAT_OBS` summary sink.
//!
//! Executor telemetry (`flatc exec`): `--trace FILE` renders kernel
//! launches on the synthetic 1 GHz host device — **1 cycle = 1 ns of
//! measured wall time** — as a single-track Chrome trace;
//! `--worker-trace FILE` instead writes real per-worker timelines from
//! the pool telemetry (one track per worker plus a kernel track);
//! `--exec-report` prints a per-kernel utilization and load-imbalance
//! report; `--sample-log FILE` appends one JSON line per dispatched
//! kernel (loadable via `autotune::load_sample_log`).
//!
//! `flatc bench` measures the built-in benchmark suite: `--write`
//! records a baseline under `results/baseline/baseline.json`, and
//! `--check` compares a fresh measurement against it, exiting nonzero
//! on any above-tolerance regression.
//!
//! Service mode: `flatc serve` runs the `flatd` daemon (content-hash
//! compile cache, per-device tuning cache, bounded-queue admission
//! control, streaming results); `flatc remote exec` executes on it with
//! results bitwise-identical to a local `--backend vm` run
//! (`--check-local` verifies that in-process); `flatc serve-bench`
//! measures p50/p99 latency and throughput under concurrent sessions.
//! See docs/SERVICE.md.
//!
//! Static analysis: `flatc lint` runs the flat-verify checker after
//! every pass (elaboration, fusion, both flattening modes,
//! simplification) and prints provenance-anchored diagnostics — one
//! JSON object per line under `--json`. `--verify` attaches the same
//! checks to `compile`/`flatten`/`simulate`; the fuzz oracle runs them
//! by default (`--no-verify` disables). Failures exit with distinct
//! codes: 2 = parse error, 3 = type error, 4 = lint errors, 1 =
//! anything else.

use incremental_flattening::prelude::*;
use std::process::ExitCode;

/// Command-line failure, split by *when* it happened: usage errors (bad
/// command line) reprint the usage text; everything downstream of
/// argument parsing (I/O, compilation, simulation, tuning) does not.
/// Parse, type, and lint failures carry distinct exit codes (2, 3, 4)
/// so scripts and editors can tell them apart without scraping stderr.
enum CliError {
    Usage(String),
    Fail(String),
    /// The source text does not parse (exit 2).
    Parse(String),
    /// The source parses but does not typecheck / elaborate (exit 3).
    Type(String),
    /// The verifier reported this many error diagnostics (exit 4).
    Lint(usize),
}

use CliError::{Fail, Lint, Parse, Type, Usage};

impl From<String> for CliError {
    fn from(e: String) -> CliError {
        Fail(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let status = run(&args, quiet);

    // Emit any FLAT_OBS-requested sinks before exiting, so even failed
    // runs leave their trace behind. --quiet drops the summary sink but
    // keeps explicitly requested files.
    let mut sinks = obs::sink::sinks_from_env();
    if quiet {
        sinks.retain(|s| !matches!(s, obs::SinkSpec::Summary));
    }
    if let Err(e) = obs::emit(obs::global(), &sinks) {
        eprintln!("flatc: FLAT_OBS sink: {e}");
        return ExitCode::FAILURE;
    }

    match status {
        Ok(()) => ExitCode::SUCCESS,
        Err(Usage(e)) => {
            eprintln!("flatc: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(Fail(e)) => {
            eprintln!("flatc: {e}");
            ExitCode::FAILURE
        }
        Err(Parse(e)) => {
            eprintln!("flatc: parse error: {e}");
            ExitCode::from(2)
        }
        Err(Type(e)) => {
            eprintln!("flatc: type error: {e}");
            ExitCode::from(3)
        }
        Err(Lint(n)) => {
            eprintln!("flatc: {n} lint error(s)");
            ExitCode::from(4)
        }
    }
}

const USAGE: &str = "usage:
  flatc check    <file> <entry>
  flatc lint     <file> <entry> [--json]
  flatc compile  <file> <entry> [--moderate|--full] [--no-simplify]
                 [--explain] [--verify]
  flatc flatten  <file> <entry> [--moderate|--full] [--no-simplify] [--explain]
  flatc tree     <file> <entry>
  flatc simulate <file> <entry> [--device k40|vega64] [--tuning FILE]
                 [--threshold NAME=V]... [--profile] [--attr] [--verify]
                 [--attr-folded FILE] [--trace FILE]
                 --arg <i64 or [d][d]type> ...
  flatc exec     <file> <entry> [--backend exec|vm] [--threads N] [--grain N]
                 [--data-seed S] [--tuning FILE] [--threshold NAME=V]...
                 [--reps N] [--profile] [--attr] [--trace FILE]
                 [--exec-report] [--worker-trace FILE] [--sample-log FILE]
                 [--disasm] --arg <i64 or [d][d]type> ...
  flatc tune     <file> <entry> [--backend sim|exec|vm] [--device k40|vega64]
                 [--exhaustive] [--coverage] [--out FILE] [--trace FILE]
                 [--threads N] [--data-seed S]
                 --dataset a1,a2,... [--dataset ...]
  flatc bench    [--check|--write] [--backend sim|exec|vm]
                 [--device k40|vega64] [--threads N]
                 [--baseline FILE] [--tolerance PCT]
  flatc fuzz     [--iters N] [--seed S] [--corpus DIR] [--failures DIR]
                 [--max-failures N] [--verify|--no-verify] [--no-exec]
                 [--no-vm]
  flatc serve    [--addr HOST:PORT] [--workers N] [--queue N] [--batch N]
                 [--threads N] [--deadline-ms N] [--cache N]
  flatc remote exec <file> <entry> --connect ADDR [--check-local]
                 [--data-seed S] [--threads N] [--grain N] [--tuning FILE]
                 [--threshold NAME=V]... [--deadline-ms N]
                 --arg <i64 or [d][d]type> ...
  flatc remote compile <file> <entry> --connect ADDR [--lint]
  flatc remote status   --connect ADDR
  flatc remote shutdown --connect ADDR
  flatc serve-bench [--connect ADDR] [--sessions N] [--requests N]
                 [--programs N] [--rate R] [--deadline-ms N] [--seed S]
                 [--file F] [--entry E] [--arg ...] [--json]
                 [--archive [FILE]]
  flatc perf log    [--archive FILE] [--limit N]
  flatc perf diff   <runA> <runB> [--archive FILE] [--folded FILE]
  flatc perf regret <file> <entry> [--threads N] [--grain N] [--reps N]
                 [--warmup N] [--cap N] [--data-seed S]
                 [--tuning FILE] [--threshold NAME=V]...
                 [--sample-log FILE] --arg <i64 or [d][d]type> ...
global options:
  --quiet        suppress informational stderr output and the FLAT_OBS
                 summary sink
exit codes:
  1 = failure    2 = parse error    3 = type error    4 = lint errors
environment:
  FLAT_OBS=summary,json=PATH,trace=PATH,folded=PATH   attach sinks
  FLAT_EXEC_THREADS=N   default thread count for the exec backend
notes:
  exec --backend vm lowers to the flat register bytecode and runs it on
  the same pool; results, paths, and reports are bitwise identical to
  --backend exec (--disasm dumps the bytecode instead of running)
  exec --trace renders kernels on the synthetic 1 GHz host device
  (1 cycle = 1 ns of wall time); use --worker-trace for real
  per-worker timelines from the pool telemetry
  simulate/exec/bench/tune also accept --archive [FILE]: append a
  self-describing run record (program hash, backend knobs, git rev,
  per-kernel attribution) to the perf archive — default
  results/perf/archive.jsonl — for later `flatc perf log|diff`;
  perf diff selectors: last, last~K, @N, or an id prefix";

fn run(args: &[String], quiet: bool) -> Result<(), CliError> {
    let (cmd, rest) = args.split_first().ok_or(Usage("missing command".into()))?;
    match cmd.as_str() {
        "bench" => return run_bench(rest, quiet),
        "fuzz" => return run_fuzz(rest, quiet),
        "perf" => return run_perf(rest, quiet),
        "serve" => return run_serve(rest, quiet),
        "serve-bench" => return run_serve_bench(rest, quiet),
        "remote" => return run_remote(rest, quiet),
        "check" | "lint" | "compile" | "flatten" | "tree" | "simulate" | "exec" | "tune" => {}
        other => return Err(Usage(format!("unknown command `{other}`"))),
    }
    let (file, rest) = rest.split_first().ok_or(Usage("missing source file".into()))?;
    let (entry, rest) = rest.split_first().ok_or(Usage("missing entry point".into()))?;
    let src = std::fs::read_to_string(file).map_err(|e| Fail(format!("{file}: {e}")))?;

    if cmd == "lint" {
        return run_lint(file, &src, entry, rest, quiet);
    }

    // Parse and elaborate separately so the two failure modes get their
    // distinct exit codes (2 and 3) on every subcommand.
    let sprog = lang::parse_program(&src).map_err(|e| Parse(format!("{file}: {e}")))?;
    let prog = lang::compile_sprogram(&sprog, entry).map_err(|e| Type(format!("{file}: {e}")))?;

    match cmd.as_str() {
        "check" => {
            println!(
                "{entry}: ok ({} parameters, {} results)",
                prog.params.len(),
                prog.ret.len()
            );
            Ok(())
        }
        "flatten" | "compile" => {
            let mut cfg = if rest.iter().any(|a| a == "--moderate") {
                compiler::FlattenConfig::moderate()
            } else if rest.iter().any(|a| a == "--full") {
                compiler::FlattenConfig::full()
            } else {
                compiler::FlattenConfig::incremental()
            };
            if rest.iter().any(|a| a == "--no-simplify") {
                cfg.simplify = false;
            }
            let fl = compiler::flatten(&prog, &cfg).map_err(|e| Fail(e.to_string()))?;
            print!("{}", ir::pretty::program(&fl.prog));
            if rest.iter().any(|a| a == "--explain") {
                println!();
                print!("{}", fl.rules.render());
            }
            if !quiet {
                eprintln!(
                    "-- {} statements, {} segops, {} thresholds, {} versions",
                    fl.stats.target_stms,
                    fl.stats.num_segops,
                    fl.stats.num_thresholds,
                    fl.stats.num_versions
                );
            }
            if rest.iter().any(|a| a == "--verify") {
                // Full inter-pass sweep: elaboration, fusion, and both
                // flattening modes with and without simplification —
                // not just the one configuration printed above.
                let report = lint_report(&src, entry)?;
                let mut errors = 0;
                for (stage, d) in report.iter() {
                    eprintln!("{}", d.render(stage));
                    errors += d.is_error() as usize;
                }
                if errors > 0 {
                    return Err(Lint(errors));
                }
                if !quiet {
                    eprintln!("-- verify: clean across {} stages", report.stages.len());
                }
            }
            Ok(())
        }
        "tree" => {
            let fl = compiler::flatten_incremental(&prog).map_err(|e| Fail(e.to_string()))?;
            if fl.thresholds.is_empty() {
                println!("(single version — no thresholds)");
            } else {
                print!("{}", fl.thresholds.render_tree());
            }
            Ok(())
        }
        "simulate" => {
            let fl = compiler::flatten_incremental(&prog).map_err(|e| Fail(e.to_string()))?;
            if rest.iter().any(|a| a == "--verify") {
                let diags = verify::verify_flattened(&fl);
                let mut errors = 0;
                for d in &diags {
                    eprintln!("{}", d.render("flatten-incremental"));
                    errors += d.is_error() as usize;
                }
                if errors > 0 {
                    return Err(Lint(errors));
                }
            }
            let dev = parse_device(rest).map_err(Usage)?;
            let vals = parse_args(rest).map_err(Usage)?;
            let thresholds = load_thresholds(rest, &fl.thresholds)?;
            let rep = gpu::simulate(&fl.prog, &vals, &thresholds, &dev)
                .map_err(|e| Fail(e.to_string()))?;
            println!("device:        {}", dev.name);
            println!(
                "runtime:       {:.1} µs ({:.0} cycles)",
                rep.microseconds, rep.cost.total_cycles
            );
            println!("kernels:       {}", rep.cost.kernel_launches);
            if !quiet {
                println!(
                    "breakdown:     compute {:.0} | global {:.0} | local {:.0} | sync {:.0} | launch {:.0}",
                    rep.cost.compute_cycles,
                    rep.cost.global_cycles,
                    rep.cost.local_cycles,
                    rep.cost.sync_cycles,
                    rep.cost.launch_cycles
                );
            }
            if rep.cost.local_fallbacks > 0 {
                println!(
                    "note:          {} kernel(s) hit the local-memory fallback",
                    rep.cost.local_fallbacks
                );
            }
            print!("version path: ");
            for c in &rep.path {
                print!(" {}({})={}", fl.thresholds.info(c.id).name, c.par, c.taken);
            }
            println!();
            if rest.iter().any(|a| a == "--profile") {
                println!();
                print!("{}", gpu::profile_table(&rep.kernels, &dev));
            }
            if rest.iter().any(|a| a == "--attr") {
                let tree = gpu::build_attr(&rep.kernels, &fl.prog.prov);
                println!();
                print!("{}", gpu::render_attr_table(&tree, &dev));
            }
            if let Some(path) = option_values(rest, "--attr-folded").next() {
                let folded = gpu::folded_stacks(&rep.kernels, &fl.prog.prov);
                obs::write_folded(std::path::Path::new(path), &folded)
                    .map_err(|e| Fail(format!("{path}: {e}")))?;
                if !quiet {
                    eprintln!("wrote {path} ({} folded stacks)", folded.lines().count());
                }
            }
            if let Some(path) = option_values(rest, "--trace").next() {
                let events = gpu::trace_events(&rep.kernels, &dev);
                obs::chrome::write_trace(std::path::Path::new(path), &events)
                    .map_err(|e| Fail(format!("{path}: {e}")))?;
                if !quiet {
                    eprintln!("wrote {path} ({} trace events)", events.len());
                }
            }
            if let Some(path) = archive_path(rest) {
                let mut rec =
                    perf::from_sim(entry, Some(file), &src, &arg_specs(rest), &rep, &fl.prog.prov, &dev);
                rec.tuning_hash = tuning_hash(rest)?;
                archive_append(path, &mut rec, quiet)?;
            }
            Ok(())
        }
        "exec" => {
            let fl = compiler::flatten_incremental(&prog).map_err(|e| Fail(e.to_string()))?;
            let backend = option_values(rest, "--backend").next().unwrap_or("exec");
            if !matches!(backend, "exec" | "vm") {
                return Err(Usage(format!(
                    "unknown --backend {backend} (expected exec or vm)"
                )));
            }
            if rest.iter().any(|a| a == "--disasm") {
                let compiled = vm::compile(&fl.prog).map_err(|e| Fail(e.to_string()))?;
                print!("{}", vm::disasm(&compiled));
                return Ok(());
            }
            let specs = parse_args(rest).map_err(Usage)?;
            let seed = parse_opt_num(rest, "--data-seed", 42u64)?;
            let vals = exec::materialize(&specs, seed).map_err(|e| Fail(e.to_string()))?;
            let thresholds = load_thresholds(rest, &fl.thresholds)?;
            let threads = option_values(rest, "--threads")
                .next()
                .map(|s| s.parse::<usize>().map_err(|e| Usage(format!("bad --threads {s}: {e}"))))
                .transpose()?;
            let worker_trace = option_values(rest, "--worker-trace").next();
            let sample_log = option_values(rest, "--sample-log").next();
            let exec_report = rest.iter().any(|a| a == "--exec-report");
            let mut cfg = exec::ExecConfig { thresholds, threads, ..exec::ExecConfig::default() };
            cfg.grain = parse_opt_num(rest, "--grain", cfg.grain)?;
            cfg.worker_trace = worker_trace.is_some();
            cfg.telemetry =
                exec_report || sample_log.is_some() || exec::telemetry_requested_by_env();
            let reps = parse_opt_num(rest, "--reps", 1usize)?;
            let (rep, m) = match backend {
                "vm" => vm::measure(&fl.prog, &vals, &cfg, reps, reps.min(1)),
                _ => exec::measure(&fl.prog, &vals, &cfg, reps, reps.min(1)),
            }
            .map_err(|e| Fail(e.to_string()))?;
            println!("backend:       {backend} ({} threads)", rep.threads);
            println!(
                "runtime:       {:.1} µs (median of {} run(s))",
                m.median_nanos / 1_000.0,
                m.runs.len()
            );
            if m.runs.len() > 1 {
                println!(
                    "spread:        {:.1}–{:.1} µs (mean {:.1} ± {:.1})",
                    m.min_nanos / 1_000.0,
                    m.max_nanos / 1_000.0,
                    m.mean_nanos / 1_000.0,
                    m.stddev_nanos / 1_000.0
                );
            }
            println!("kernels:       {}", rep.launches.len());
            print!("version path: ");
            for c in &rep.path {
                print!(" {}({})={}", fl.thresholds.info(c.id).name, c.par, c.taken);
            }
            println!();
            for (i, v) in rep.values.iter().enumerate() {
                let shape = v.shape();
                if shape.is_empty() {
                    println!("result {i}:      scalar");
                } else {
                    let dims: Vec<String> = shape.iter().map(|d| format!("[{d}]")).collect();
                    println!("result {i}:      {}", dims.join(""));
                }
            }
            let dev = exec::host_device(rep.threads);
            let kernels = exec::kernel_launches(&rep);
            if rest.iter().any(|a| a == "--profile") {
                println!();
                print!("{}", gpu::profile_table(&kernels, &dev));
            }
            if rest.iter().any(|a| a == "--attr") {
                let tree = gpu::build_attr(&kernels, &fl.prog.prov);
                println!();
                print!("{}", gpu::render_attr_table(&tree, &dev));
            }
            if let Some(path) = option_values(rest, "--trace").next() {
                // Synthetic-device convention: 1 cycle = 1 ns, so this
                // trace shows kernel wall times on a single track. For
                // real per-worker timelines use --worker-trace.
                let events = gpu::trace_events(&kernels, &dev);
                obs::chrome::write_trace(std::path::Path::new(path), &events)
                    .map_err(|e| Fail(format!("{path}: {e}")))?;
                if !quiet {
                    eprintln!("wrote {path} ({} trace events)", events.len());
                }
            }
            if exec_report {
                println!();
                print!("{}", exec::render_exec_report(&rep));
            }
            if let Some(path) = worker_trace {
                let events = exec::worker_trace_events(&rep);
                obs::chrome::write_trace(std::path::Path::new(path), &events)
                    .map_err(|e| Fail(format!("{path}: {e}")))?;
                if !quiet {
                    eprintln!("wrote {path} ({} worker-trace events)", events.len());
                }
            }
            if let Some(path) = sample_log {
                exec::append_sample_log(std::path::Path::new(path), &rep, entry)
                    .map_err(|e| Fail(format!("{path}: {e}")))?;
                if !quiet {
                    eprintln!("appended {} sample(s) to {path}", rep.launches.len());
                }
            }
            if let Some(path) = archive_path(rest) {
                let build = if backend == "vm" { perf::from_vm } else { perf::from_exec };
                let mut rec = build(
                    entry,
                    Some(file),
                    &src,
                    &arg_specs(rest),
                    &rep,
                    m.median_nanos,
                    reps,
                    &fl.prog.prov,
                );
                rec.tuning_hash = tuning_hash(rest)?;
                archive_append(path, &mut rec, quiet)?;
            }
            Ok(())
        }
        "tune" => {
            let fl = compiler::flatten_incremental(&prog).map_err(|e| Fail(e.to_string()))?;
            let backend = option_values(rest, "--backend").next().unwrap_or("sim");
            let threads: Option<usize> = match option_values(rest, "--threads").next() {
                None => None,
                Some(s) => {
                    Some(s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}")))?)
                }
            };
            let dev = match backend {
                "sim" => parse_device(rest).map_err(Usage)?,
                "exec" | "vm" => {
                    exec::host_device(threads.unwrap_or_else(exec::default_threads))
                }
                other => {
                    return Err(Usage(format!(
                        "unknown --backend {other} (expected sim, exec, or vm)"
                    )))
                }
            };
            let mut datasets = Vec::new();
            for (i, spec) in option_values(rest, "--dataset").enumerate() {
                let parts: Vec<String> = spec.split(',').map(str::to_string).collect();
                let vals = parse_arg_list(&parts).map_err(Usage)?;
                datasets.push(tuning::Dataset::new(format!("d{i}"), vals));
            }
            if datasets.is_empty() {
                return Err(Usage("tune needs at least one --dataset".into()));
            }
            let mut problem = tuning::TuningProblem::new(&fl, datasets, dev);
            let seed = parse_opt_num(rest, "--data-seed", 42u64)?;
            let reps = parse_opt_num(rest, "--reps", 3usize)?;
            if backend == "exec" || backend == "vm" {
                // Measured cost function: materialize each dataset's
                // abstract args once per evaluation and report the
                // median wall-clock in nanoseconds as "cycles" (the
                // host device's 1 GHz clock makes cycles_to_us the
                // ns→µs conversion). The vm backend times the bytecode
                // tier instead of the tree-walking executor; paths and
                // launch records are identical, only the time differs.
                let prog_ref = &fl.prog;
                let measure_fn = if backend == "vm" { vm::measure } else { exec::measure };
                problem = problem.with_runner(move |d, t| {
                    let vals =
                        exec::materialize(&d.args, seed).map_err(|e| gpu::SimError(e.0))?;
                    let cfg = exec::ExecConfig {
                        thresholds: t.clone(),
                        threads,
                        ..exec::ExecConfig::default()
                    };
                    let (rep, m) = measure_fn(prog_ref, &vals, &cfg, reps, 1)
                        .map_err(|e| gpu::SimError(e.0))?;
                    Ok(exec::sim_report_of(&rep, m.median_nanos))
                });
            }
            let result = if rest.iter().any(|a| a == "--exhaustive") {
                tuning::exhaustive_tune(&problem, 1 << 20)
            } else {
                tuning::StochasticTuner::default().run(&problem)
            }
            .map_err(|e| Fail(e.to_string()))?;
            println!(
                "tuned in {} candidates ({} simulations, {} cache hits):",
                result.candidates, result.simulations, result.cache_hits
            );
            let mut ts: Vec<_> = result.thresholds.iter().collect();
            ts.sort();
            for (id, v) in ts {
                println!("  {} = {v}", fl.thresholds.info(id).name);
            }
            for (d, rt) in problem.datasets.iter().zip(&result.per_dataset) {
                println!("  {}: {:.1} µs", d.name, problem.device.cycles_to_us(*rt));
            }
            if rest.iter().any(|a| a == "--coverage") {
                let cov = tuning::path_coverage(&problem, &result.thresholds, &result)
                    .map_err(|e| Fail(e.to_string()))?;
                println!();
                print!("{}", tuning::render_coverage(&cov));
            }
            if let Some(path) = option_values(rest, "--out").next() {
                let text = compiler::write_tuning(&fl.thresholds, &result.thresholds);
                std::fs::write(path, text).map_err(|e| Fail(format!("{path}: {e}")))?;
                println!("wrote {path}");
            }
            if let Some(path) = option_values(rest, "--trace").next() {
                use std::io::Write as _;
                let mut f = std::fs::File::create(path)
                    .map_err(|e| Fail(format!("{path}: {e}")))?;
                for ev in &result.events {
                    let line = obs::json::to_string(&ev.to_json())
                        .map_err(|e| Fail(format!("{path}: {e}")))?;
                    writeln!(f, "{line}").map_err(|e| Fail(format!("{path}: {e}")))?;
                }
                if !quiet {
                    eprintln!("wrote {path} ({} evaluation events)", result.events.len());
                }
            }
            if let Some(path) = archive_path(rest) {
                let mut named: Vec<(String, i64)> = result
                    .thresholds
                    .iter()
                    .map(|(id, v)| (fl.thresholds.info(id).name.clone(), v))
                    .collect();
                named.sort();
                let specs: Vec<String> =
                    option_values(rest, "--dataset").map(str::to_string).collect();
                let total: f64 = result.per_dataset.iter().sum();
                let mut rec = perf::from_tune(
                    entry,
                    Some(file),
                    &src,
                    &specs,
                    backend,
                    problem.device.name,
                    total,
                    named,
                );
                archive_append(path, &mut rec, quiet)?;
            }
            Ok(())
        }
        _ => unreachable!("command validated above"),
    }
}

/// Run the inter-pass verifier over the whole pipeline, mapping the
/// pipeline's own failure modes to their exit-code-bearing CLI errors.
fn lint_report(src: &str, entry: &str) -> Result<verify::LintReport, CliError> {
    verify::verify_pipeline(src, entry).map_err(|e| match e {
        verify::PipelineError::Parse(err) => Parse(err.to_string()),
        verify::PipelineError::Type(err) => Type(err.to_string()),
        verify::PipelineError::Flatten(err) => Fail(err.to_string()),
    })
}

/// `flatc lint`: the standalone flat-verify front-end. Prints one
/// diagnostic per line — human-readable by default, one JSON object per
/// line under `--json` — and exits 4 iff any has Error severity.
fn run_lint(
    file: &str,
    src: &str,
    entry: &str,
    rest: &[String],
    quiet: bool,
) -> Result<(), CliError> {
    let json = rest.iter().any(|a| a == "--json");
    let report = lint_report(src, entry).map_err(|e| match e {
        Parse(msg) => Parse(format!("{file}: {msg}")),
        Type(msg) => Type(format!("{file}: {msg}")),
        other => other,
    })?;
    let mut errors = 0;
    for (stage, d) in report.iter() {
        if json {
            println!("{}", d.render_json(stage));
        } else {
            println!("{}", d.render(stage));
        }
        errors += d.is_error() as usize;
    }
    if errors > 0 {
        return Err(Lint(errors));
    }
    if !quiet && !json {
        let warnings = report.total();
        if warnings > 0 {
            println!("{file}: {entry}: no lint errors ({warnings} warning(s))");
        } else {
            println!("{file}: {entry}: lint clean across {} stages", report.stages.len());
        }
    }
    Ok(())
}

/// `flatc bench`: measure the built-in suite; `--write` records the
/// baseline, `--check` gates on it.
fn run_bench(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let backend = option_values(rest, "--backend").next().unwrap_or("sim");
    let path = option_values(rest, "--baseline")
        .next()
        .unwrap_or("results/baseline/baseline.json");
    let tolerance: f64 = match option_values(rest, "--tolerance").next() {
        None => 2.0,
        Some(s) => s
            .parse()
            .map_err(|e| Usage(format!("bad --tolerance {s}: {e}")))?,
    };
    let (current, device_label) = match backend {
        "sim" => {
            let dev = parse_device(rest).map_err(Usage)?;
            if !quiet {
                eprintln!("measuring benchmark suite on {}...", dev.name);
            }
            (bench::measure_suite(&dev), dev.name)
        }
        "exec" => {
            let threads: Option<usize> = match option_values(rest, "--threads").next() {
                None => None,
                Some(s) => {
                    Some(s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}")))?)
                }
            };
            let reps = parse_opt_num(rest, "--reps", 3usize)?;
            if !quiet {
                eprintln!(
                    "measuring benchmark suite on {} host threads...",
                    threads.unwrap_or_else(exec::default_threads)
                );
            }
            (bench::measure_suite_exec(threads, reps, 1), "host")
        }
        "vm" => {
            let threads: Option<usize> = match option_values(rest, "--threads").next() {
                None => None,
                Some(s) => {
                    Some(s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}")))?)
                }
            };
            let reps = parse_opt_num(rest, "--reps", 3usize)?;
            if !quiet {
                eprintln!(
                    "measuring benchmark suite (vm backend) on {} host threads...",
                    threads.unwrap_or_else(exec::default_threads)
                );
            }
            (bench::measure_suite_vm(threads, reps, 1), "host")
        }
        other => {
            return Err(Usage(format!(
                "unknown --backend {other} (expected sim, exec, or vm)"
            )))
        }
    };
    if let Some(apath) = archive_path(rest) {
        let mut rec = perf::from_bench(&current, device_label);
        archive_append(apath, &mut rec, quiet)?;
    }
    if rest.iter().any(|a| a == "--write") {
        let p = std::path::Path::new(path);
        bench::Baseline::write(&current, p).map_err(|e| Fail(format!("{path}: {e}")))?;
        println!("wrote {} ({} entries)", path, current.entries.len());
        return Ok(());
    }
    if rest.iter().any(|a| a == "--check") {
        let base = bench::Baseline::load(std::path::Path::new(path))
            .map_err(|e| Fail(format!("{path}: {e} (run `flatc bench --write` first)")))?;
        bench::check_same_backend(&base, &current).map_err(Fail)?;
        let cmp = bench::compare(&base, &current, tolerance);
        print!("{}", bench::render_comparison(&cmp, tolerance));
        if cmp.failed() {
            return Err(Fail("benchmark regression gate failed".into()));
        }
        return Ok(());
    }
    // No mode flag: just print the measurements.
    for e in &current.entries {
        println!(
            "{:<40} {:>14.0} cycles {:>10.1} µs {:>5} kernels",
            e.key, e.cycles, e.microseconds, e.kernels
        );
    }
    Ok(())
}

/// `flatc fuzz`: differential fuzzing of version equivalence. First
/// replays the committed corpus (`--corpus`, default `tests/corpus`),
/// then runs a fresh campaign; shrunk failures land in `--failures`.
fn run_fuzz(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let parse_num = |flag: &str, default: usize| -> Result<usize, CliError> {
        match option_values(rest, flag).next() {
            None => Ok(default),
            Some(s) => s.parse().map_err(|e| Usage(format!("bad {flag} {s}: {e}"))),
        }
    };
    let iters = parse_num("--iters", 200)?;
    let seed = match option_values(rest, "--seed").next() {
        None => 0u64,
        Some(s) => s.parse().map_err(|e| Usage(format!("bad --seed {s}: {e}")))?,
    };
    let max_failures = parse_num("--max-failures", 5)?;
    let corpus_dir = option_values(rest, "--corpus").next().unwrap_or("tests/corpus");
    let failures_dir = option_values(rest, "--failures")
        .next()
        .map(std::path::PathBuf::from);

    // Corpus replay: every previously shrunk failure must stay fixed.
    let replays = fuzz::replay_corpus(std::path::Path::new(corpus_dir))
        .map_err(|e| Fail(format!("{corpus_dir}: {e}")))?;
    let mut corpus_failed = 0;
    for (name, outcome) in &replays {
        if let Err(f) = outcome {
            corpus_failed += 1;
            eprintln!("corpus {name}: FAILED {f}");
        }
    }
    if !quiet && !replays.is_empty() {
        eprintln!(
            "corpus: {}/{} cases pass ({corpus_dir})",
            replays.len() - corpus_failed,
            replays.len()
        );
    }

    // Fresh campaign.
    let cfg = fuzz::FuzzConfig {
        iters,
        seed,
        failures_dir,
        max_failures,
        ..fuzz::FuzzConfig::default()
    };
    // The verifier leg is on by default; --verify makes that explicit,
    // --no-verify drops back to the four value-equivalence legs.
    let mut oracle = fuzz::oracle::Oracle::new();
    if rest.iter().any(|a| a == "--no-verify") {
        oracle.verify = false;
    }
    // Likewise the executor leg (runs every forced path and the live
    // dispatch on real threads); --no-exec keeps the campaign on the
    // simulator-only oracles.
    if rest.iter().any(|a| a == "--no-exec") {
        oracle.exec = false;
    }
    // And the bytecode-VM leg (same forced paths and live dispatch,
    // through the compiled tier); --no-vm keeps the campaign on the
    // interpreter and tree-walking executor only.
    if rest.iter().any(|a| a == "--no-vm") {
        oracle.vm = false;
    }
    let summary = fuzz::run_campaign_with(&cfg, &oracle, |i| {
        if !quiet && i > 0 && i % 100 == 0 {
            eprintln!("... {i}/{iters}");
        }
    });

    println!(
        "fuzz: {} iters, {} passed, {} failures (seed {seed})",
        summary.iters,
        summary.passed,
        summary.failures.len()
    );
    println!(
        "      {} forced versions checked; {} programs exercised multiple \
         threshold paths (max {} distinct)",
        summary.versions_checked, summary.multipath_programs, summary.best_distinct_paths
    );
    for f in &summary.failures {
        eprintln!("-- iter {} failed at stage `{}`: {}", f.iter, f.stage, f.detail);
        eprintln!("{}", f.case.source);
    }
    if corpus_failed > 0 {
        return Err(Fail(format!("{corpus_failed} corpus case(s) regressed")));
    }
    if !summary.ok() {
        let hint = match &cfg.failures_dir {
            Some(d) => format!(" (shrunk cases written to {})", d.display()),
            None => " (rerun with --failures DIR to persist shrunk cases)".into(),
        };
        return Err(Fail(format!(
            "{} fuzz failure(s){hint}",
            summary.failures.len()
        )));
    }
    if summary.multipath_programs == 0 && iters >= 50 {
        return Err(Fail(
            "no generated program exercised multiple threshold paths — \
             the oracle is not covering the branching tree"
                .into(),
        ));
    }
    Ok(())
}

/// `flatc perf`: the run archive and its consumers — `log` lists
/// archived runs, `diff` aligns two runs' kernel attributions, and
/// `regret` re-executes a program down every version path to price the
/// live run's threshold decisions.
fn run_perf(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let (sub, rest) = rest
        .split_first()
        .ok_or(Usage("perf needs a subcommand: log, diff, or regret".into()))?;
    match sub.as_str() {
        "log" => {
            let path = explicit_archive(rest).unwrap_or(perf::DEFAULT_ARCHIVE);
            let (records, warnings) = perf::load_archive(std::path::Path::new(path))
                .map_err(|e| Fail(format!("{e} (archive runs with --archive first)")))?;
            for w in &warnings {
                eprintln!("warning: {path}: {w}");
            }
            let limit = parse_opt_num(rest, "--limit", records.len())?;
            let shown = &records[records.len().saturating_sub(limit)..];
            if shown.is_empty() {
                println!("archive {path} is empty");
            } else {
                print!("{}", perf::render_log(shown));
            }
            Ok(())
        }
        "diff" => {
            let (sel_a, rest2) =
                rest.split_first().ok_or(Usage("perf diff needs two run selectors".into()))?;
            let (sel_b, _) =
                rest2.split_first().ok_or(Usage("perf diff needs two run selectors".into()))?;
            let path = explicit_archive(rest).unwrap_or(perf::DEFAULT_ARCHIVE);
            let (records, warnings) = perf::load_archive(std::path::Path::new(path))
                .map_err(|e| Fail(format!("{e} (archive runs with --archive first)")))?;
            for w in &warnings {
                eprintln!("warning: {path}: {w}");
            }
            let a = perf::resolve(&records, sel_a).map_err(Fail)?;
            let b = perf::resolve(&records, sel_b).map_err(Fail)?;
            // diff_records reconciles internally: a returned diff is
            // already proven to replay both sides' totals bitwise.
            let diff = perf::diff_records(a, b).map_err(Fail)?;
            print!("{}", perf::render_diff(&diff, a, b));
            if let Some(out) = option_values(rest, "--folded").next() {
                let folded = perf::folded_diff(&diff);
                std::fs::write(out, &folded).map_err(|e| Fail(format!("{out}: {e}")))?;
                if !quiet {
                    eprintln!(
                        "wrote {out} ({} two-column folded stacks for difffolded tooling)",
                        folded.lines().count()
                    );
                }
            }
            Ok(())
        }
        "regret" => {
            let (file, rest2) =
                rest.split_first().ok_or(Usage("perf regret needs a source file".into()))?;
            let (entry, _) =
                rest2.split_first().ok_or(Usage("perf regret needs an entry point".into()))?;
            let src =
                std::fs::read_to_string(file).map_err(|e| Fail(format!("{file}: {e}")))?;
            let sprog = lang::parse_program(&src).map_err(|e| Parse(format!("{file}: {e}")))?;
            let prog = lang::compile_sprogram(&sprog, entry)
                .map_err(|e| Type(format!("{file}: {e}")))?;
            let fl = compiler::flatten_incremental(&prog).map_err(|e| Fail(e.to_string()))?;
            let specs = parse_args(rest).map_err(Usage)?;
            let seed = parse_opt_num(rest, "--data-seed", 42u64)?;
            let vals = exec::materialize(&specs, seed).map_err(|e| Fail(e.to_string()))?;
            let threads = match option_values(rest, "--threads").next() {
                None => None,
                Some(s) => {
                    Some(s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}")))?)
                }
            };
            let cfg = perf::RegretConfig {
                thresholds: load_thresholds(rest, &fl.thresholds)?,
                threads,
                grain: parse_opt_num(rest, "--grain", exec::DEFAULT_GRAIN)?,
                reps: parse_opt_num(rest, "--reps", 3usize)?,
                warmup: parse_opt_num(rest, "--warmup", 1usize)?,
                cap: parse_opt_num(rest, "--cap", 64usize)?,
            };
            if !quiet {
                eprintln!(
                    "measuring the live path and up to {} forced alternatives...",
                    cfg.cap
                );
            }
            let report = perf::profile_regret(&fl.prog, &fl.thresholds, entry, &vals, &cfg)
                .map_err(Fail)?;
            print!("{}", perf::render_regret(&report));
            if let Some(out) = option_values(rest, "--sample-log").next() {
                perf::append_regret_samples(std::path::Path::new(out), &report)
                    .map_err(|e| Fail(format!("{out}: {e}")))?;
                if !quiet {
                    eprintln!(
                        "appended {} what-if sample(s) to {out} (autotune warm-start format)",
                        report.alternatives.len()
                    );
                }
            }
            Ok(())
        }
        other => Err(Usage(format!("unknown perf subcommand `{other}` (log, diff, regret)"))),
    }
}

/// `--archive` with an optional FILE value: present without a value (or
/// followed by another flag) means the default archive location.
fn archive_path(args: &[String]) -> Option<&str> {
    args.iter()
        .position(|a| a == "--archive")
        .map(|i| match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.as_str(),
            _ => perf::DEFAULT_ARCHIVE,
        })
}

/// `--archive FILE` where the value is required to be explicit (perf
/// subcommands, where a bare `--archive` would swallow a selector).
fn explicit_archive(args: &[String]) -> Option<&str> {
    option_values(args, "--archive").next()
}

/// The verbatim `--arg` specs of a run, for the archive record.
fn arg_specs(args: &[String]) -> Vec<String> {
    option_values(args, "--arg").map(str::to_string).collect()
}

/// Content hash of the `--tuning` file, if one was given.
fn tuning_hash(rest: &[String]) -> Result<Option<String>, CliError> {
    match option_values(rest, "--tuning").next() {
        None => Ok(None),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| Fail(format!("{path}: {e}")))?;
            Ok(Some(perf::content_hash(&text)))
        }
    }
}

/// Append a finished record to the archive at `path`.
fn archive_append(path: &str, rec: &mut perf::RunRecord, quiet: bool) -> Result<(), CliError> {
    let id = perf::append_record(std::path::Path::new(path), rec)
        .map_err(|e| Fail(format!("{path}: {e}")))?;
    if !quiet {
        eprintln!("archived run {id} -> {path}");
    }
    Ok(())
}

/// Threshold assignment from `--tuning FILE` plus `--threshold NAME=V`
/// overrides, shared by `simulate` and `exec`.
fn load_thresholds(
    rest: &[String],
    registry: &compiler::ThresholdRegistry,
) -> Result<Thresholds, CliError> {
    let mut thresholds = Thresholds::new();
    if let Some(path) = option_values(rest, "--tuning").next() {
        let text = std::fs::read_to_string(path).map_err(|e| Fail(format!("{path}: {e}")))?;
        thresholds = compiler::read_tuning(registry, &text).map_err(Fail)?;
    }
    for spec in option_values(rest, "--threshold") {
        let (name, v) = spec
            .split_once('=')
            .ok_or_else(|| Usage(format!("bad --threshold {spec}")))?;
        let info = registry
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| Usage(format!("unknown threshold {name}")))?;
        thresholds.set(info.id, v.parse().map_err(|e| Usage(format!("{spec}: {e}")))?);
    }
    Ok(thresholds)
}

/// `--flag N` with a default, for any parseable number type.
fn parse_opt_num<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match option_values(args, flag).next() {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|e| Usage(format!("bad {flag} {s}: {e}"))),
    }
}

fn option_values<'a>(args: &'a [String], flag: &'a str) -> impl Iterator<Item = &'a str> {
    args.windows(2)
        .filter(move |w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn parse_device(args: &[String]) -> Result<gpu::DeviceSpec, String> {
    match option_values(args, "--device").next() {
        None | Some("k40") => Ok(gpu::DeviceSpec::k40()),
        Some("vega64") => Ok(gpu::DeviceSpec::vega64()),
        Some(other) => Err(format!("unknown device `{other}` (k40 or vega64)")),
    }
}

fn parse_args(args: &[String]) -> Result<Vec<gpu::AbsValue>, String> {
    let specs: Vec<String> = option_values(args, "--arg").map(str::to_string).collect();
    parse_arg_list(&specs)
}

fn parse_arg_list(specs: &[String]) -> Result<Vec<gpu::AbsValue>, String> {
    specs.iter().map(|s| parse_abs_value(s)).collect()
}

/// `1024` → i64 scalar; `[16][256]f32` → array shape; `3.5` → f32.
fn parse_abs_value(spec: &str) -> Result<gpu::AbsValue, String> {
    let spec = spec.trim();
    if let Some(stripped) = spec.strip_prefix('[') {
        let mut dims = Vec::new();
        let mut rest = stripped;
        loop {
            let (dim, after) = rest
                .split_once(']')
                .ok_or_else(|| format!("bad array spec `{spec}`"))?;
            dims.push(dim.parse::<i64>().map_err(|e| format!("`{spec}`: {e}"))?);
            if let Some(inner) = after.strip_prefix('[') {
                rest = inner;
            } else {
                let elem = match after {
                    "f32" | "" => ir::ScalarType::F32,
                    "f64" => ir::ScalarType::F64,
                    "i32" => ir::ScalarType::I32,
                    "i64" => ir::ScalarType::I64,
                    "bool" => ir::ScalarType::Bool,
                    other => return Err(format!("unknown element type `{other}`")),
                };
                return Ok(gpu::AbsValue::array(dims, elem));
            }
        }
    }
    if let Ok(n) = spec.parse::<i64>() {
        return Ok(gpu::AbsValue::known(ir::Const::I64(n)));
    }
    if let Ok(x) = spec.parse::<f32>() {
        return Ok(gpu::AbsValue::known(ir::Const::F32(x)));
    }
    Err(format!("cannot parse argument `{spec}`"))
}

/// `flatc serve`: run the flatd daemon in the foreground. Prints the
/// bound address on stdout (useful with port 0) and runs until a
/// client sends `shutdown`.
fn run_serve(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let mut cfg = serve::ServerConfig { quiet, ..serve::ServerConfig::default() };
    cfg.addr = option_values(rest, "--addr")
        .next()
        .unwrap_or("127.0.0.1:7155")
        .to_string();
    cfg.workers = parse_opt_num(rest, "--workers", cfg.workers)?;
    cfg.queue = parse_opt_num(rest, "--queue", cfg.queue)?;
    cfg.batch = parse_opt_num(rest, "--batch", cfg.batch)?;
    cfg.cache_capacity = parse_opt_num(rest, "--cache", cfg.cache_capacity)?;
    if let Some(s) = option_values(rest, "--threads").next() {
        cfg.threads =
            Some(s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}")))?);
    }
    if let Some(s) = option_values(rest, "--deadline-ms").next() {
        cfg.default_deadline_ms =
            Some(s.parse().map_err(|e| Usage(format!("bad --deadline-ms {s}: {e}")))?);
    }
    let handle = serve::start(cfg).map_err(|e| Fail(format!("flatd: {e}")))?;
    // Scripts capture the bound address from the first stdout line.
    println!("{}", handle.addr());
    handle.join();
    Ok(())
}

/// Shared by `remote` subcommands: connect to `--connect ADDR`.
fn remote_client(rest: &[String]) -> Result<serve::Client, CliError> {
    let addr = option_values(rest, "--connect")
        .next()
        .ok_or(Usage("remote commands need --connect HOST:PORT".into()))?;
    serve::Client::connect(addr).map_err(|e| Fail(format!("{addr}: {e}")))
}

/// Map a structured daemon error onto the local exit-code taxonomy, so
/// `flatc remote exec` fails exactly like `flatc exec` would.
fn remote_error(e: serve::ClientError) -> CliError {
    match e {
        serve::ClientError::Service(err) => match err.code.as_str() {
            "parse" => Parse(err.message),
            "type" => Type(err.message),
            "lint" => Lint(err.message.split_whitespace().next()
                .and_then(|n| n.parse().ok())
                .unwrap_or(1)),
            _ => Fail(format!("daemon: [{}] {}", err.code, err.message)),
        },
        other => Fail(other.to_string()),
    }
}

/// `flatc remote`: drive a running daemon.
fn run_remote(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let (sub, rest) = rest.split_first().ok_or(Usage("remote needs a subcommand".into()))?;
    match sub.as_str() {
        "status" => {
            let mut client = remote_client(rest)?;
            let status = client.status().map_err(remote_error)?;
            let text = obs::json::to_string_pretty(&status)
                .map_err(|e| Fail(e.to_string()))?;
            println!("{text}");
            Ok(())
        }
        "shutdown" => {
            let mut client = remote_client(rest)?;
            let reply = client.shutdown().map_err(remote_error)?;
            if !quiet {
                let text = obs::json::to_string(&reply).map_err(|e| Fail(e.to_string()))?;
                eprintln!("daemon drained ({text})");
            }
            Ok(())
        }
        "compile" => {
            let (file, rest) = rest.split_first().ok_or(Usage("missing source file".into()))?;
            let (entry, rest) = rest.split_first().ok_or(Usage("missing entry point".into()))?;
            let src =
                std::fs::read_to_string(file).map_err(|e| Fail(format!("{file}: {e}")))?;
            let mut client = remote_client(rest)?;
            let lint = rest.iter().any(|a| a == "--lint");
            let reply = client.compile(&src, entry, lint).map_err(remote_error)?;
            println!(
                "{entry}: program {} ({}, {} threshold(s), compile {} µs)",
                reply.program,
                if reply.cached { "cached" } else { "compiled" },
                reply.thresholds.len(),
                reply.compile_micros
            );
            Ok(())
        }
        "exec" => run_remote_exec(rest, quiet),
        other => Err(Usage(format!("unknown remote subcommand `{other}`"))),
    }
}

/// `flatc remote exec`: run a program on the daemon. `--check-local`
/// reruns it locally on the vm backend and verifies the remote results
/// are bitwise identical.
fn run_remote_exec(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let (file, rest) = rest.split_first().ok_or(Usage("missing source file".into()))?;
    let (entry, rest) = rest.split_first().ok_or(Usage("missing entry point".into()))?;
    let src = std::fs::read_to_string(file).map_err(|e| Fail(format!("{file}: {e}")))?;
    let mut client = remote_client(rest)?;

    let tuning = match option_values(rest, "--tuning").next() {
        None => None,
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| Fail(format!("{path}: {e}")))?)
        }
    };
    let mut overrides = Vec::new();
    for spec in option_values(rest, "--threshold") {
        let (name, v) = spec
            .split_once('=')
            .ok_or_else(|| Usage(format!("bad --threshold {spec}")))?;
        overrides.push((
            name.to_string(),
            v.parse().map_err(|e| Usage(format!("{spec}: {e}")))?,
        ));
    }
    let spec = serve::ExecSpec {
        source: Some(src.clone()),
        entry: entry.to_string(),
        args: arg_specs(rest),
        data_seed: Some(parse_opt_num(rest, "--data-seed", 42u64)?),
        threads: option_values(rest, "--threads")
            .next()
            .map(|s| s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}"))))
            .transpose()?,
        grain: option_values(rest, "--grain")
            .next()
            .map(|s| s.parse().map_err(|e| Usage(format!("bad --grain {s}: {e}"))))
            .transpose()?,
        tuning: tuning.clone(),
        thresholds: overrides.clone(),
        deadline_ms: option_values(rest, "--deadline-ms")
            .next()
            .map(|s| s.parse().map_err(|e| Usage(format!("bad --deadline-ms {s}: {e}"))))
            .transpose()?,
        ..serve::ExecSpec::default()
    };
    let reply = client.exec(&serve::client::exec_request(spec)).map_err(remote_error)?;

    println!(
        "remote:        {} ({} threads, {})",
        reply.program,
        reply.threads,
        if reply.cached { "cache hit" } else { "cold compile" }
    );
    println!("runtime:       {:.1} µs (on the daemon)", reply.wall_nanos / 1_000.0);
    println!("kernels:       {}", reply.kernels);
    for (i, v) in reply.values.iter().enumerate() {
        let shape = v.shape();
        if shape.is_empty() {
            println!("result {i}:      scalar");
        } else {
            let dims: Vec<String> = shape.iter().map(|d| format!("[{d}]")).collect();
            println!("result {i}:      {}", dims.join(""));
        }
    }

    if rest.iter().any(|a| a == "--check-local") {
        // Re-run locally with identical inputs on the vm backend and
        // require bitwise-identical results.
        let sprog = lang::parse_program(&src).map_err(|e| Parse(format!("{file}: {e}")))?;
        let prog =
            lang::compile_sprogram(&sprog, entry).map_err(|e| Type(format!("{file}: {e}")))?;
        let fl = compiler::flatten_incremental(&prog).map_err(|e| Fail(e.to_string()))?;
        let specs = parse_args(rest).map_err(Usage)?;
        let seed = parse_opt_num(rest, "--data-seed", 42u64)?;
        let vals = exec::materialize(&specs, seed).map_err(|e| Fail(e.to_string()))?;
        let mut thresholds = Thresholds::new();
        if let Some(text) = &tuning {
            thresholds = compiler::read_tuning(&fl.thresholds, text).map_err(Fail)?;
        }
        for (name, v) in &overrides {
            let info = fl
                .thresholds
                .iter()
                .find(|i| &i.name == name)
                .ok_or_else(|| Usage(format!("unknown threshold {name}")))?;
            thresholds.set(info.id, *v);
        }
        let cfg = exec::ExecConfig {
            thresholds,
            threads: option_values(rest, "--threads")
                .next()
                .map(|s| s.parse().map_err(|e| Usage(format!("bad --threads {s}: {e}"))))
                .transpose()?,
            grain: parse_opt_num(rest, "--grain", exec::DEFAULT_GRAIN)?,
            ..exec::ExecConfig::default()
        };
        let compiled = vm::compile(&fl.prog).map_err(|e| Fail(e.to_string()))?;
        let local = vm::run_compiled(&compiled, &vals, &cfg).map_err(|e| Fail(e.to_string()))?;
        if local.values.len() != reply.values.len() {
            return Err(Fail(format!(
                "check-local: remote returned {} value(s), local {}",
                reply.values.len(),
                local.values.len()
            )));
        }
        for (i, (r, l)) in reply.values.iter().zip(&local.values).enumerate() {
            if !serve::proto::bitwise_eq(r, l) {
                return Err(Fail(format!(
                    "check-local: result {i} differs bitwise from the local vm run"
                )));
            }
        }
        if !quiet {
            eprintln!(
                "check-local: {} value(s) bitwise identical to the local vm backend",
                reply.values.len()
            );
        }
    }
    Ok(())
}

/// `flatc serve-bench`: the flatd load generator. With `--connect` it
/// drives an existing daemon; otherwise it starts an in-process one,
/// runs the load, and shuts it down.
fn run_serve_bench(rest: &[String], quiet: bool) -> Result<(), CliError> {
    let mut cfg = serve::LoadConfig {
        sessions: parse_opt_num(rest, "--sessions", 32usize)?,
        requests: parse_opt_num(rest, "--requests", 8usize)?,
        programs: parse_opt_num(rest, "--programs", 16usize)?,
        seed: parse_opt_num(rest, "--seed", 0x10adu64)?,
        ..serve::LoadConfig::default()
    };
    if let Some(s) = option_values(rest, "--rate").next() {
        cfg.rate_per_session =
            Some(s.parse().map_err(|e| Usage(format!("bad --rate {s}: {e}")))?);
    }
    if let Some(s) = option_values(rest, "--deadline-ms").next() {
        cfg.deadline_ms =
            Some(s.parse().map_err(|e| Usage(format!("bad --deadline-ms {s}: {e}")))?);
    }
    if let Some(file) = option_values(rest, "--file").next() {
        cfg.source =
            std::fs::read_to_string(file).map_err(|e| Fail(format!("{file}: {e}")))?;
        cfg.entry = option_values(rest, "--entry").next().unwrap_or("main").to_string();
        cfg.args = arg_specs(rest);
    }

    // Either drive an existing daemon or stand one up for the run.
    let local = match option_values(rest, "--connect").next() {
        Some(addr) => {
            cfg.addr = addr
                .parse()
                .map_err(|e| Usage(format!("bad --connect {addr}: {e}")))?;
            None
        }
        None => {
            let server = serve::start(serve::ServerConfig {
                quiet: true,
                workers: parse_opt_num(rest, "--workers", 4usize)?,
                queue: parse_opt_num(rest, "--queue", 256usize)?,
                ..serve::ServerConfig::default()
            })
            .map_err(|e| Fail(format!("flatd: {e}")))?;
            cfg.addr = server.addr();
            Some(server)
        }
    };

    let outcome = serve::bench::run(&cfg);
    if let Some(server) = local {
        server.stop();
    }
    let report = outcome.map_err(|e| Fail(e.to_string()))?;

    if rest.iter().any(|a| a == "--json") {
        let text = obs::json::to_string_pretty(&report.to_json())
            .map_err(|e| Fail(e.to_string()))?;
        println!("{text}");
    } else {
        print!("{}", report.render());
    }
    if let Some(path) = archive_path(rest) {
        let mut rec = serve::bench::to_record(&cfg, &report);
        archive_append(path, &mut rec, quiet)?;
    }
    Ok(())
}
