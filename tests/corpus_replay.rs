//! Regression suite: replay every shrunk/seed case in `tests/corpus/`
//! through the full differential oracle. A failure here means a bug
//! the fuzzer once found (or a hand-written hard case) has resurfaced.
//!
//! To add a case: run `flatc fuzz --failures tests/corpus`, or copy a
//! shrunk program printed by a failing campaign into a `.fut` file with
//! the `-- n=.. m=.. data-seed=..` header (see docs/TESTING.md).

use incremental_flattening::fuzz;
use std::path::Path;

const CORPUS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");

#[test]
fn corpus_is_not_empty() {
    let cases = fuzz::corpus::load_dir(Path::new(CORPUS)).unwrap();
    assert!(
        cases.len() >= 4,
        "expected the committed seed corpus under {CORPUS}, found {} cases",
        cases.len()
    );
}

#[test]
fn every_corpus_case_replays_clean() {
    let outcomes = fuzz::replay_corpus(Path::new(CORPUS)).unwrap();
    assert!(!outcomes.is_empty());
    let failed: Vec<String> = outcomes
        .iter()
        .filter_map(|(name, r)| r.as_ref().err().map(|f| format!("{name}: {f}")))
        .collect();
    assert!(failed.is_empty(), "corpus regressions:\n{}", failed.join("\n"));
}

#[test]
fn the_canonical_nested_case_exercises_multiple_paths() {
    // The seed-nested-map-reduce case is specifically there to pin the
    // oracle's path-enumeration behaviour, not just value agreement.
    let cases = fuzz::corpus::load_dir(Path::new(CORPUS)).unwrap();
    let case = cases
        .iter()
        .find(|c| c.name == "seed-nested-map-reduce")
        .expect("seed-nested-map-reduce.fut must exist");
    let inputs = fuzz::oracle::FuzzInputs::from_seed(case.n, case.m, case.data_seed);
    let report = fuzz::oracle::Oracle::new()
        .check(&case.source, &inputs)
        .expect("canonical case must pass");
    assert!(
        report.distinct_paths() >= 2,
        "nested map-reduce flattened to fewer than 2 distinct threshold \
         paths ({}); the branching tree has collapsed",
        report.distinct_paths()
    );
}
