//! End-to-end tests of the differential fuzzing oracle: the acceptance
//! criteria for `flat-fuzz` as a whole.
//!
//! 1. For a nested-map program, the oracle enumerates at least two
//!    distinct threshold paths of the incremental flattening and every
//!    forced version agrees bitwise with the reference semantics.
//! 2. A deliberately broken transformation (a swapped neutral element,
//!    injected through the oracle's mutation hook) is caught, shrunk to
//!    a minimal program, and is writable as a replayable corpus case.

use incremental_flattening::fuzz::{self, oracle::*};

const NESTED: &str = "\
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\\r -> redomap (+) (\\x -> x * c) 0 r) xss
";

#[test]
fn oracle_enumerates_multiple_agreeing_paths_for_nested_maps() {
    let inputs = FuzzInputs::from_seed(3, 4, 2024);
    let report = Oracle::new()
        .check(NESTED, &inputs)
        .expect("healthy pipeline must pass the oracle");
    // ≥ 2 distinct path signatures means the oracle really forced
    // different versions of the branching tree — and check() only
    // returns Ok if every one of them agreed bitwise with the
    // reference interpreter and with the simulator's recorded path.
    assert!(
        report.distinct_paths() >= 2,
        "expected ≥ 2 distinct incremental threshold paths, got {}",
        report.distinct_paths()
    );
    assert!(report.versions_checked >= report.distinct_paths());
}

#[test]
fn forced_paths_are_stable_across_repeated_checks() {
    let inputs = FuzzInputs::from_seed(2, 3, 7);
    let a = Oracle::new().check(NESTED, &inputs).unwrap();
    let b = Oracle::new().check(NESTED, &inputs).unwrap();
    assert_eq!(a.path_signatures, b.path_signatures);
}

/// The verifier leg (fifth oracle): a pass that duplicates a binding
/// without renaming produces IR every downstream value check would
/// happily accept — only the well-formedness verifier sees it. Inject
/// exactly that through the mutation hook and demand the oracle fails
/// at `verify-elab`, with the rule code in the detail.
#[test]
fn verifier_leg_catches_duplicated_binding() {
    let oracle = Oracle {
        mutate_post_elab: Some(Box::new(|prog| {
            assert!(
                incremental_flattening::verify::inject::duplicate_first_binding(prog),
                "test program must have a binding to duplicate"
            );
        })),
        ..Oracle::new()
    };
    let inputs = FuzzInputs::from_seed(3, 4, 2024);
    let err = oracle
        .check(NESTED, &inputs)
        .expect_err("duplicate binding must fail the verifier leg");
    assert_eq!(err.stage, "verify-elab", "wrong stage: {err:?}");
    assert!(err.detail.contains("V001"), "detail must carry the rule code: {}", err.detail);
}

/// Verified-clean programs stay clean across *all* forced threshold
/// paths: with the verifier leg enabled (the default), the oracle
/// re-verifies elaboration, fusion, and both flattening modes and
/// still reaches its full path enumeration with zero diagnostics.
#[test]
fn clean_programs_verify_across_all_forced_paths() {
    let oracle = Oracle::new();
    assert!(oracle.verify, "the verifier leg must be on by default");
    let inputs = FuzzInputs::from_seed(3, 4, 99);
    let report = oracle
        .check(NESTED, &inputs)
        .expect("clean program must survive the verifier-enabled oracle");
    assert!(report.distinct_paths() >= 2);
    // And the standalone pipeline sweep agrees: no stage diagnoses.
    let lint = incremental_flattening::verify::verify_pipeline(NESTED, "main").unwrap();
    assert_eq!(lint.total(), 0, "verify_pipeline must report zero diagnostics");
}

#[test]
fn broken_neutral_element_is_caught_shrunk_and_corpus_writable() {
    let oracle = Oracle {
        mutate_post_elab: Some(Box::new(|prog| {
            break_zero_neutral_elements(prog);
        })),
        ..Oracle::new()
    };
    let cfg = fuzz::FuzzConfig {
        iters: 150,
        seed: 42,
        max_failures: 1,
        shrink_trials: 300,
        ..fuzz::FuzzConfig::default()
    };
    let summary = fuzz::run_campaign_with(&cfg, &oracle, |_| {});
    assert!(
        !summary.failures.is_empty(),
        "a campaign against a broken flattener must find a failure"
    );
    let f = &summary.failures[0];
    assert!(
        f.stage == "source-vs-ir" || f.stage == "fusion-vs-source" || f.stage == "version-mismatch",
        "neutral-element bug should surface as a value disagreement, got stage `{}`",
        f.stage
    );

    // The shrunk program must be minimal-ish and still a valid program.
    let prog = flat_lang::parse_program(&f.case.source).unwrap();
    let def = prog.find("main").unwrap();
    assert!(
        fuzz::shrink::size(&def.body) <= 12,
        "shrinker left {} AST nodes:\n{}",
        fuzz::shrink::size(&def.body),
        f.case.source
    );

    // And it must round-trip through the corpus format: write, load,
    // and reproduce the same failure stage under the broken oracle.
    let dir = std::env::temp_dir().join("flat-fuzz-oracle-test-corpus");
    let _ = std::fs::remove_dir_all(&dir);
    f.case.write_to(&dir).unwrap();
    let loaded = fuzz::corpus::load_dir(&dir).unwrap();
    assert_eq!(loaded.len(), 1);
    let inputs = FuzzInputs::from_seed(loaded[0].n, loaded[0].m, loaded[0].data_seed);
    let replay = oracle.check(&loaded[0].source, &inputs);
    assert!(
        matches!(&replay, Err(fail) if fail.stage == f.stage),
        "reloaded corpus case did not reproduce stage `{}`: {replay:?}",
        f.stage
    );
    // Against the *healthy* pipeline the same case must pass — the bug
    // is in the mutation, not the program.
    Oracle::new()
        .check(&loaded[0].source, &inputs)
        .expect("shrunk case must pass the unbroken pipeline");
    let _ = std::fs::remove_dir_all(&dir);
}
