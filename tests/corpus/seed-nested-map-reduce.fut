-- flat-fuzz case: seed-nested-map-reduce
-- n=3 m=4 data-seed=11
-- Hand-written seed: the paper's canonical nested shape (Fig. 1).
-- Flattens to a multi-version branching tree, so the oracle must
-- enumerate and force at least two distinct threshold paths.
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> reduce (+) 0 r) xss
