-- flat-fuzz case: seed-scan-inside-loop
-- n=4 m=2 data-seed=37
-- Hand-written seed: sequential loop around parallel inner work, the
-- shape where incremental flattening must not sequentialise the scan.
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  loop (acc = 0) for i < 3 do
    acc + reduce max (-9223372036854775807 - 1) (scan (+) 0 ys)
