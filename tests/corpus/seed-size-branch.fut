-- flat-fuzz case: seed-size-branch
-- n=1 m=1 data-seed=5
-- Hand-written seed: a source-level `if` over sizes wrapping nested
-- parallelism — the oracle's path-consistency check must tolerate the
-- versions guarded away by the untaken branch.
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  if n <= 2
  then map (\r -> reduce (+) 0 (map (\x -> x * x) r)) xss
  else replicate n (reduce min 9223372036854775807 ys)
