-- flat-fuzz case: seed-redomap-with-free-scalar
-- n=2 m=3 data-seed=23
-- Hand-written seed: fused map-reduce (redomap) per row, with the
-- entry's free scalar `c` captured inside the mapped lambda.
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c + 1) 0 r) xss
