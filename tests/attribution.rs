//! End-to-end tests of the provenance/attribution pipeline: the
//! acceptance invariant (attribution-tree cycles sum *exactly* to the
//! simulator's total, for every example program, every benchmark, and
//! every threshold setting), golden renderings of the profiler tables,
//! and the `flatc` surface (`simulate --attr`, `--attr-folded`,
//! `tune --coverage`, `bench --write/--check`).

use incremental_flattening::prelude::*;
use std::process::Command;

fn example(name: &str) -> String {
    format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn flatc(args: &[&str]) -> (bool, String, String) {
    flatc_env(args, &[])
}

fn flatc_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flatc"));
    cmd.args(args).env_remove("FLAT_OBS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("flatc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Check the invariant on one simulated program: the attribution tree's
/// total, and its per-launch leaves re-summed in launch order, both
/// equal the cost report's total — exactly, not within a tolerance.
fn assert_attribution_exact(prog: &ir::Program, rep: &gpu::SimReport, what: &str) {
    let tree = gpu::build_attr(&rep.kernels, &prog.prov);
    assert_eq!(
        tree.total_cycles(),
        rep.cost.total_cycles,
        "{what}: attribution total must equal the sim total exactly"
    );
    assert_eq!(
        tree.leaf_cycles_in_launch_order(),
        rep.cost.total_cycles,
        "{what}: leaf cycles in launch order must re-sum exactly"
    );
    assert_eq!(
        tree.root.kernels as usize,
        rep.kernels.len(),
        "{what}: every launch must appear in the tree"
    );
}

/// The acceptance-criteria property, on the checked-in example programs:
/// attribution is exact across code versions (threshold settings) and
/// data sizes.
#[test]
fn attribution_is_exact_on_example_programs() {
    let dev = gpu::DeviceSpec::k40();
    type ArgsFn = fn(i64) -> Vec<gpu::AbsValue>;
    let cases: [(&str, &str, ArgsFn); 2] = [
        ("matmul.fut", "matmul", |n| {
            vec![
                gpu::AbsValue::known(ir::Const::I64(n)),
                gpu::AbsValue::known(ir::Const::I64(64)),
                gpu::AbsValue::known(ir::Const::I64(64)),
                gpu::AbsValue::array(vec![n, 64], ir::ScalarType::F32),
                gpu::AbsValue::array(vec![64, 64], ir::ScalarType::F32),
            ]
        }),
        ("sumrows.fut", "sumrows", |n| {
            vec![
                gpu::AbsValue::known(ir::Const::I64(n)),
                gpu::AbsValue::known(ir::Const::I64(256)),
                gpu::AbsValue::array(vec![n, 256], ir::ScalarType::F32),
            ]
        }),
    ];
    for (file, entry, mk_args) in cases {
        let src = std::fs::read_to_string(example(file)).unwrap();
        let prog = lang::compile(&src, entry).unwrap();
        let fl = compiler::flatten_incremental(&prog).unwrap();
        for setting in [0, Thresholds::DEFAULT, i64::MAX] {
            let t = Thresholds::uniform(fl.thresholds.ids(), setting);
            for n in [2, 64, 4096] {
                let rep = gpu::simulate(&fl.prog, &mk_args(n), &t, &dev).unwrap();
                assert!(!rep.kernels.is_empty());
                assert_attribution_exact(
                    &fl.prog,
                    &rep,
                    &format!("{file} thresholds={setting} n={n}"),
                );
            }
        }
    }
}

/// The same property over the whole benchmark suite — including
/// locvolcalib's data-dependent host control flow, where the simulator
/// merges branch costs — on every dataset and at extreme threshold
/// settings.
#[test]
fn attribution_is_exact_on_every_benchmark() {
    let dev = gpu::DeviceSpec::k40();
    let cfg = compiler::FlattenConfig::incremental();
    for b in bench_suite::all_benchmarks() {
        let fl = b.flatten(&cfg);
        for setting in [0, Thresholds::DEFAULT, i64::MAX] {
            let t = Thresholds::uniform(fl.thresholds.ids(), setting);
            for d in b.datasets.iter().chain(&b.tuning_datasets) {
                let rep = gpu::simulate(&fl.prog, &d.args, &t, &dev).unwrap();
                assert_attribution_exact(
                    &fl.prog,
                    &rep,
                    &format!("{}/{} thresholds={setting}", b.name, d.name),
                );
            }
        }
    }
}

/// Every kernel a benchmark launches must carry real provenance — the
/// frontend's anchors reach every parallel construct the flattener
/// versions.
#[test]
fn benchmark_kernels_carry_source_provenance() {
    let dev = gpu::DeviceSpec::k40();
    let cfg = compiler::FlattenConfig::incremental();
    for b in bench_suite::all_benchmarks() {
        let fl = b.flatten(&cfg);
        let t = Thresholds::new();
        let d = &b.datasets[0];
        let rep = gpu::simulate(&fl.prog, &d.args, &t, &dev).unwrap();
        for k in &rep.kernels {
            assert!(
                !k.prov.is_unknown(),
                "{}: kernel `{}` has no provenance",
                b.name,
                k.name
            );
            let stack = fl.prog.prov.stack(k.prov.id);
            assert!(
                stack[0].starts_with("def "),
                "{}: `{}` stack must be rooted at the entry def, got {stack:?}",
                b.name,
                k.name
            );
        }
    }
}

/// Golden rendering of `gpu::profile_table`: exact column layout on a
/// synthetic launch list, plus determinism.
#[test]
fn profile_table_golden() {
    let dev = gpu::DeviceSpec::k40();
    let k = gpu::KernelLaunch {
        name: "mapres".to_string(),
        kind: "segmap",
        level: ir::ast::LVL_GRID,
        groups: 128.0,
        group_threads: 256.0,
        threads: 32768.0,
        occupancy: 0.75,
        cost: gpu::KernelCost { cycles: 12345.0, ..Default::default() },
        global_bytes: 1048576.0,
        local_bytes: 2048.0,
        launches: 1,
        start_cycle: 0.0,
        prov: ir::prov::Prov::UNKNOWN,
        path: Vec::new(),
    };
    let table = gpu::profile_table(std::slice::from_ref(&k), &dev);
    let expected = "\
#    kernel               kind           lvl     groups  grp_thr    occ       cycles   glob_bytes    loc_bytes fallb
0    mapres               segmap           1        128      256    75%        12345      1048576         2048     -
1 kernel(s), 1 launch(es), 12345 cycles total (16.6 µs)
";
    assert_eq!(table, expected);
    assert_eq!(table, gpu::profile_table(&[k], &dev), "rendering is deterministic");
}

/// Golden rendering of the attribution table: stable widths and
/// launch-encounter ordering.
#[test]
fn attr_table_golden() {
    let dev = gpu::DeviceSpec::k40();
    let mut table = ir::prov::ProvTable::new();
    let root = table.fresh(ir::prov::ProvId::UNKNOWN, "def main", ir::prov::SrcLoc::new(1, 1));
    let m = table.fresh(root.id, "map", ir::prov::SrcLoc::new(2, 5));
    let mk = |name: &str, cycles: f64, prov| gpu::KernelLaunch {
        name: name.to_string(),
        kind: "segmap",
        level: ir::ast::LVL_GRID,
        groups: 1.0,
        group_threads: 32.0,
        threads: 32.0,
        occupancy: 1.0,
        cost: gpu::KernelCost { cycles, ..Default::default() },
        global_bytes: 100.0,
        local_bytes: 0.0,
        launches: 1,
        start_cycle: 0.0,
        prov,
        path: Vec::new(),
    };
    let kernels = vec![mk("a", 750.0, m), mk("b", 250.0, root)];
    let tree = gpu::build_attr(&kernels, &table);
    let rendered = gpu::render_attr_table(&tree, &dev);
    let expected = "        cycles      %         µs kernels launches    glob_bytes  frame
          1000 100.0%        1.3       2        2           200  <program>
          1000 100.0%        1.3       2        2           200    def main@1:1
           750  75.0%        1.0       1        1           100      map@2:5
           750  75.0%        1.0       1        1           100        a [segmap]
           250  25.0%        0.3       1        1           100      b [segmap]
";
    assert_eq!(rendered, expected);
    let folded = gpu::folded_stacks(&kernels, &table);
    assert_eq!(
        folded,
        "def main@1:1;map@2:5;a [segmap] 750\ndef main@1:1;b [segmap] 250\n"
    );
}

#[test]
fn simulate_attr_renders_tree_and_folded_stacks() {
    let dir = std::env::temp_dir().join("flatc_attr_test");
    std::fs::create_dir_all(&dir).unwrap();
    let folded_path = dir.join("mm.folded");
    let (ok, stdout, _) = flatc(&[
        "simulate",
        &example("matmul.fut"),
        "matmul",
        "--arg", "512", "--arg", "64", "--arg", "64",
        "--arg", "[512][64]f32", "--arg", "[64][64]f32",
        "--attr",
        "--attr-folded", folded_path.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("<program>"), "attr tree root:\n{stdout}");
    assert!(stdout.contains("def matmul@"), "root frame from source:\n{stdout}");
    assert!(stdout.contains("map@"), "source construct frame:\n{stdout}");
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(stack.contains(';'), "stack has frames: {line}");
        assert!(count.parse::<u64>().is_ok(), "count is integral: {line}");
        assert!(stack.starts_with("def matmul@"), "rooted at entry: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tune_coverage_reports_executed_and_explored_paths() {
    let (ok, stdout, _) = flatc(&[
        "tune",
        &example("matmul.fut"),
        "matmul",
        "--exhaustive",
        "--coverage",
        "--dataset", "16,16,16,[16][16]f32,[16][16]f32",
        "--dataset", "4096,64,64,[4096][64]f32,[64][64]f32",
    ]);
    assert!(ok);
    assert!(stdout.contains("path coverage"), "coverage header:\n{stdout}");
    assert!(stdout.contains("executed path:"));
    assert!(
        stdout.contains("[explored during tuning]"),
        "the exhaustive tuner explores the winning path:\n{stdout}"
    );
    assert!(stdout.contains("suff_outer_par_0"));
    assert!(stdout.contains("not reached") || stdout.contains("fell through"));
}

#[test]
fn bench_write_then_check_passes_and_detects_regressions() {
    let dir = std::env::temp_dir().join("flatc_bench_gate_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.json");
    let p = path.to_str().unwrap();

    // --check without a baseline fails with a helpful message.
    let (ok, _, stderr) = flatc(&["bench", "--check", "--baseline", p]);
    assert!(!ok);
    assert!(stderr.contains("--write"), "hints at --write:\n{stderr}");

    let (ok, stdout, _) = flatc(&["bench", "--write", "--baseline", p]);
    assert!(ok, "--write succeeds");
    assert!(stdout.contains("entries"));

    // Identical toolchain: the gate passes at zero tolerance.
    let (ok, stdout, _) =
        flatc(&["bench", "--check", "--baseline", p, "--tolerance", "0"]);
    assert!(ok, "gate must pass against a fresh baseline:\n{stdout}");
    assert!(stdout.contains("0 regressed"));

    // Halve one baseline entry's cycles: the current measurement is now
    // a >tolerance regression and the gate exits nonzero.
    let mut base = bench::Baseline::load(&path).unwrap();
    base.entries[0].cycles /= 2.0;
    base.write(&path).unwrap();

    let (ok, stdout, stderr) = flatc(&["bench", "--check", "--baseline", p]);
    assert!(!ok, "regression must fail the gate");
    assert!(stdout.contains("REGRESSED"), "names the culprit:\n{stdout}");
    assert!(stderr.contains("regression gate failed"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: an invalid `FLAT_OBS` value must not abort the run — the
/// parse error goes to stderr and the command continues with sinks
/// disabled.
#[test]
fn invalid_flat_obs_warns_and_continues() {
    let (ok, stdout, stderr) = flatc_env(
        &["check", &example("matmul.fut"), "matmul"],
        &[("FLAT_OBS", "bogus")],
    );
    assert!(ok, "the command itself must still succeed");
    assert!(stdout.contains("ok"), "check ran normally:\n{stdout}");
    assert!(
        stderr.contains("FLAT_OBS") && stderr.contains("bogus"),
        "parse error on stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("-- flat-obs"),
        "no summary sink after a parse error:\n{stderr}"
    );
}

/// Satellite: `--quiet` suppresses the `FLAT_OBS=summary` sink but not
/// the command's own stdout.
#[test]
fn quiet_suppresses_the_summary_sink() {
    let args = ["check", &example("matmul.fut"), "matmul"];
    let (ok, _, stderr) = flatc_env(&args, &[("FLAT_OBS", "summary")]);
    assert!(ok);
    assert!(
        stderr.contains("-- flat-obs"),
        "without --quiet the summary prints:\n{stderr}"
    );
    let quiet_args = ["check", &example("matmul.fut"), "matmul", "--quiet"];
    let (ok, stdout, stderr) = flatc_env(&quiet_args, &[("FLAT_OBS", "summary")]);
    assert!(ok);
    assert!(stdout.contains("ok"), "stdout is unaffected:\n{stdout}");
    assert!(
        !stderr.contains("-- flat-obs"),
        "--quiet drops the summary sink:\n{stderr}"
    );
}

/// `FLAT_OBS=folded=PATH` writes generic folded stacks from the trace
/// recorder (satellite: the new obs sink works through the env var).
#[test]
fn flat_obs_folded_sink_writes_collapsed_stacks() {
    let dir = std::env::temp_dir().join("flatc_obs_folded_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spans.folded");
    let spec = format!("folded={}", path.display());
    let (ok, _, _) = flatc_env(
        &[
            "simulate",
            &example("matmul.fut"),
            "matmul",
            "--arg", "64", "--arg", "64", "--arg", "64",
            "--arg", "[64][64]f32", "--arg", "[64][64]f32",
        ],
        &[("FLAT_OBS", &spec)],
    );
    assert!(ok);
    let folded = std::fs::read_to_string(&path).unwrap();
    assert!(!folded.is_empty(), "compiler spans were recorded");
    for line in folded.lines() {
        let (_, count) = line.rsplit_once(' ').unwrap();
        assert!(count.parse::<u64>().is_ok(), "bad folded line: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
