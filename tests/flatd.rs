//! End-to-end tests for the flatd daemon: remote execution must be
//! **bitwise identical** to a local `--backend vm` run on every example
//! and benchmark program, repeated requests must be served from the
//! content-hash compile cache (the hit counter proves no recompilation
//! happened), admission control must shed late and excess work with
//! structured errors, and the wire protocol must answer malformed
//! frames, oversized payloads, and compile failures with the documented
//! error taxonomy.
//!
//! All tests run the daemon in-process on a loopback port picked by the
//! OS, so they are self-contained and parallel-safe.

use incremental_flattening::prelude::*;

use serve::proto::{self, ServiceError};
use serve::{Client, ClientError, ExecSpec, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start_server(cfg: ServerConfig) -> serve::ServerHandle {
    serve::start(ServerConfig { quiet: true, ..cfg }).expect("bind loopback daemon")
}

fn default_server() -> serve::ServerHandle {
    start_server(ServerConfig::default())
}

/// Execute `source` remotely and locally (vm backend, identical specs
/// and data seed) and require bitwise-identical results.
fn check_remote_matches_local(
    client: &mut Client,
    name: &str,
    source: &str,
    entry: &str,
    specs: &[String],
) {
    let reply = client
        .exec(&serve::client::exec_request(ExecSpec {
            source: Some(source.to_string()),
            entry: entry.to_string(),
            args: specs.to_vec(),
            data_seed: Some(42),
            ..ExecSpec::default()
        }))
        .unwrap_or_else(|e| panic!("{name}: remote exec: {e}"));

    let prog = lang::compile(source, entry).unwrap_or_else(|e| panic!("{name}: {e}"));
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let abs: Vec<gpu::AbsValue> = specs
        .iter()
        .map(|s| proto::parse_abs_value(s).unwrap_or_else(|e| panic!("{name}: {e}")))
        .collect();
    let vals = exec::materialize(&abs, 42).unwrap();
    let compiled = vm::compile(&fl.prog).unwrap();
    let local = vm::run_compiled(&compiled, &vals, &exec::ExecConfig::default())
        .unwrap_or_else(|e| panic!("{name}: local vm: {e}"));

    assert_eq!(
        reply.values.len(),
        local.values.len(),
        "{name}: result arity differs"
    );
    for (i, (r, l)) in reply.values.iter().zip(&local.values).enumerate() {
        assert!(
            proto::bitwise_eq(r, l),
            "{name}: result {i} differs bitwise between remote and local vm"
        );
    }
}

#[test]
fn examples_bitwise_identical_to_local_vm() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cases: [(&str, &str, &[&str]); 3] = [
        ("examples/sumrows.fut", "sumrows", &["16", "64", "[16][64]f32"]),
        (
            "examples/matmul.fut",
            "matmul",
            &["8", "16", "8", "[8][16]f32", "[16][8]f32"],
        ),
        (
            "examples/locvolcalib.fut",
            "locvolcalib",
            &["8", "8", "8", "[8][8][8]f32", "[8][8][8]f32", "2"],
        ),
    ];
    for (file, entry, specs) in cases {
        let source = std::fs::read_to_string(file).unwrap();
        let specs: Vec<String> = specs.iter().map(|s| s.to_string()).collect();
        check_remote_matches_local(&mut client, file, &source, entry, &specs);
    }
    server.stop();
}

#[test]
fn benchmark_suite_bitwise_identical_to_local_vm() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for b in bench_suite::all_benchmarks() {
        // Derive wire-friendly specs from the benchmark's own test
        // arguments: same shapes, data regenerated from the shared seed
        // on both sides.
        let mut rng = StdRng::seed_from_u64(0xDE7E);
        let args = (b.test_args)(&mut rng);
        let specs: Vec<String> = args
            .iter()
            .map(|v| proto::abs_value_spec(&gpu::AbsValue::of_value(v)))
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        check_remote_matches_local(&mut client, b.name, b.source, b.entry, &specs);
    }
    server.stop();
}

#[test]
fn repeated_requests_hit_the_compile_cache() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let source = std::fs::read_to_string("examples/sumrows.fut").unwrap();
    let specs = vec!["8".to_string(), "16".to_string(), "[8][16]f32".to_string()];

    let first = client.exec_source(&source, "sumrows", &specs).unwrap();
    assert!(!first.cached, "fresh daemon must cold-compile");
    assert_eq!(server.daemon().compile.misses(), 1);
    assert_eq!(server.daemon().compile.hits(), 0);

    let second = client.exec_source(&source, "sumrows", &specs).unwrap();
    assert!(second.cached, "identical source+entry must hit the cache");
    assert_eq!(server.daemon().compile.misses(), 1, "no recompilation");
    assert_eq!(server.daemon().compile.hits(), 1);
    assert_eq!(first.program, second.program, "stable content hash");

    // Results are identical across the cache hit.
    for (a, b) in first.values.iter().zip(&second.values) {
        assert!(proto::bitwise_eq(a, b));
    }

    // compile + exec-by-hash round-trip: no source on the second wire.
    let compiled = client.compile(&source, "sumrows", false).unwrap();
    assert!(compiled.cached);
    let by_hash = client
        .exec(&serve::client::exec_request(ExecSpec {
            program: Some(compiled.program.clone()),
            args: specs,
            data_seed: Some(42),
            ..ExecSpec::default()
        }))
        .unwrap();
    assert!(by_hash.cached);
    for (a, b) in first.values.iter().zip(&by_hash.values) {
        assert!(proto::bitwise_eq(a, b));
    }
    server.stop();
}

#[test]
fn compile_failures_carry_the_exit_code_taxonomy() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let err = |r: Result<serve::client::CompileReply, ClientError>| -> ServiceError {
        match r {
            Err(ClientError::Service(e)) => e,
            other => panic!("expected a service error, got {other:?}"),
        }
    };
    let parse = err(client.compile("def main (", "main", false));
    assert_eq!((parse.code.as_str(), parse.exit_code()), ("parse", 2));
    let ty = err(client.compile("def main (x: i64): i64 = x + 1.5f32", "main", false));
    assert_eq!((ty.code.as_str(), ty.exit_code()), ("type", 3));
    assert_eq!(ServiceError::new("lint", "2 lint error(s)").exit_code(), 4);

    // Exec against a hash the daemon never compiled.
    let unknown = client.exec(&serve::client::exec_request(ExecSpec {
        program: Some("feedfacefeedface".to_string()),
        args: vec!["4".to_string(), "[4]i64".to_string()],
        ..ExecSpec::default()
    }));
    match unknown {
        Err(ClientError::Service(e)) => assert_eq!(e.code, "unknown-program"),
        other => panic!("expected unknown-program, got {other:?}"),
    }
    server.stop();
}

#[test]
fn malformed_frames_get_structured_proto_errors() {
    let server = default_server();

    // Garbage payload of the declared length: `proto` error, then the
    // daemon hangs up (framing is unrecoverable).
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let garbage = b"this is not json\n";
    s.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    s.write_all(garbage).unwrap();
    let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
    let reply = proto::read_frame(&mut reader, proto::MAX_FRAME).unwrap();
    assert_eq!(
        reply.get("code").and_then(obs::json::Value::as_str),
        Some("proto")
    );
    match proto::read_frame(&mut reader, proto::MAX_FRAME) {
        Err(proto::FrameError::Eof) => {}
        other => panic!("expected hang-up after proto error, got {other:?}"),
    }

    // Oversized length prefix: `toobig` error, then hang-up.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
    let reply = proto::read_frame(&mut reader, proto::MAX_FRAME).unwrap();
    assert_eq!(
        reply.get("code").and_then(obs::json::Value::as_str),
        Some("toobig")
    );
    match proto::read_frame(&mut reader, proto::MAX_FRAME) {
        Err(proto::FrameError::Eof) => {}
        other => panic!("expected hang-up after toobig error, got {other:?}"),
    }

    // Unknown request type: `proto` error but the connection survives.
    let mut client = Client::connect(server.addr()).unwrap();
    // (Client::status round-trips a well-formed frame; an unknown type
    // goes through the raw stream.)
    let s = TcpStream::connect(server.addr()).unwrap();
    let mut w = std::io::BufWriter::new(s.try_clone().unwrap());
    proto::write_frame(
        &mut w,
        &obs::json::Value::object(vec![("type", obs::json::Value::from("warble"))]),
    )
    .unwrap();
    let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
    let reply = proto::read_frame(&mut reader, proto::MAX_FRAME).unwrap();
    assert_eq!(
        reply.get("code").and_then(obs::json::Value::as_str),
        Some("proto")
    );
    // Same connection still answers a real request.
    proto::write_frame(
        &mut w,
        &obs::json::Value::object(vec![("type", obs::json::Value::from("status"))]),
    )
    .unwrap();
    let reply = proto::read_frame(&mut reader, proto::MAX_FRAME).unwrap();
    assert_eq!(
        reply.get("type").and_then(obs::json::Value::as_str),
        Some("status")
    );
    drop(s);

    // Mid-stream disconnect (partial length prefix, then hang-up) must
    // not wedge the daemon: a fresh client still gets served.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&[0, 0]).unwrap();
    drop(s);
    std::thread::sleep(Duration::from_millis(20));
    let status = client.status().unwrap();
    assert_eq!(
        status.get("type").and_then(obs::json::Value::as_str),
        Some("status")
    );
    server.stop();
}

#[test]
fn expired_deadlines_are_shed_with_a_deadline_error() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let source = std::fs::read_to_string("examples/sumrows.fut").unwrap();
    // A zero-millisecond deadline has always passed by dispatch time.
    let result = client.exec(&serve::client::exec_request(ExecSpec {
        source: Some(source),
        entry: "sumrows".to_string(),
        args: vec!["8".into(), "16".into(), "[8][16]f32".into()],
        deadline_ms: Some(0),
        ..ExecSpec::default()
    }));
    match result {
        Err(ClientError::Service(e)) => assert_eq!(e.code, "deadline"),
        other => panic!("expected deadline shed, got {other:?}"),
    }
    assert!(server.daemon().admit.expired.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    server.stop();
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let server = default_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let source = std::fs::read_to_string("examples/sumrows.fut").unwrap();
    client
        .exec_source(&source, "sumrows", &["4".into(), "8".into(), "[4][8]f32".into()])
        .unwrap();

    let reply = client.shutdown().unwrap();
    assert_eq!(
        reply.get("type").and_then(obs::json::Value::as_str),
        Some("shutdown-complete")
    );
    assert_eq!(reply.get("served").and_then(obs::json::Value::as_u64), Some(1));
    server.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "daemon must stop listening after the drain"
    );
}

/// A small end-to-end run of the load generator: every request must
/// complete, the storm must run entirely from the compile cache, and
/// cache hits must be decisively faster than cold compiles.
#[test]
fn load_generator_round_trips() {
    let server = start_server(ServerConfig { workers: 4, ..ServerConfig::default() });
    let cfg = serve::LoadConfig {
        addr: server.addr(),
        sessions: 24,
        requests: 4,
        programs: 6,
        ..serve::LoadConfig::default()
    };
    let report = serve::bench::run(&cfg).expect("load run");
    server.stop();

    assert_eq!(report.completed, 24 * 4);
    assert_eq!(report.errors, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.cold.count, 6);
    // The hit phase loops the variants until p99 is a real order
    // statistic (>= 200 samples).
    assert!(report.hit.count >= 200, "hit samples: {}", report.hit.count);
    assert_eq!(report.hit.count % 6, 0);
    assert!(
        report.storm_hit_rate == 1.0,
        "storm draws from compiled programs only (hit rate {})",
        report.storm_hit_rate
    );
    assert!(report.throughput > 0.0);
    assert!(
        report.hit.p50 < report.cold.p50,
        "cache hits ({:.0} ns) should beat cold compiles ({:.0} ns)",
        report.hit.p50,
        report.cold.p50
    );
}

/// An open-loop run exercises the scheduled-issue path.
#[test]
fn open_loop_load_completes() {
    let server = default_server();
    let cfg = serve::LoadConfig {
        addr: server.addr(),
        sessions: 4,
        requests: 3,
        programs: 2,
        rate_per_session: Some(200.0),
        ..serve::LoadConfig::default()
    };
    let report = serve::bench::run(&cfg).expect("open-loop run");
    server.stop();
    assert!(report.open_loop);
    assert_eq!(report.completed, 12);
    assert_eq!(report.errors, 0);
}

#[test]
fn tune_requests_are_cached_per_device_and_request() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let source = std::fs::read_to_string("examples/sumrows.fut").unwrap();
    let compiled = client.compile(&source, "sumrows", false).unwrap();

    let tune_req = |datasets: Vec<Vec<&str>>| {
        let mut req = obs::json::Value::object(vec![
            ("type", obs::json::Value::from("tune")),
            ("program", obs::json::Value::from(compiled.program.as_str())),
            ("reps", obs::json::Value::from(1u64)),
            ("max_candidates", obs::json::Value::from(6u64)),
        ]);
        req.insert(
            "datasets",
            obs::json::Value::Array(
                datasets
                    .iter()
                    .map(|d| {
                        obs::json::Value::Array(
                            d.iter().map(|s| obs::json::Value::from(*s)).collect(),
                        )
                    })
                    .collect(),
            ),
        );
        req
    };

    // Serve one exec first: every served run feeds the sample store,
    // which the tuner uses as a warm-start incumbent.
    client
        .exec(&serve::client::exec_request(ExecSpec {
            program: Some(compiled.program.clone()),
            args: vec!["4".into(), "64".into(), "[4][64]f32".into()],
            data_seed: Some(42),
            ..ExecSpec::default()
        }))
        .unwrap();
    assert!(server.daemon().samples.count(&compiled.program) > 0);

    let first = client.tune(&tune_req(vec![vec!["4", "64", "[4][64]f32"]])).unwrap();
    assert_eq!(first.get("cached").and_then(obs::json::Value::as_bool), Some(false));
    assert_eq!(
        first.get("warm").and_then(obs::json::Value::as_bool),
        Some(true),
        "tuning after a served run must warm-start from its samples"
    );
    assert!(first
        .get("tuning")
        .and_then(obs::json::Value::as_str)
        .is_some_and(|t| !t.is_empty()));

    // Identical request: served from the tuning cache.
    let second = client.tune(&tune_req(vec![vec!["4", "64", "[4][64]f32"]])).unwrap();
    assert_eq!(second.get("cached").and_then(obs::json::Value::as_bool), Some(true));
    assert_eq!(
        first.get("thresholds").map(|v| format!("{v:?}")),
        second.get("thresholds").map(|v| format!("{v:?}")),
        "cached reply carries the same assignment"
    );

    // A different dataset is a different tuning key.
    let third = client.tune(&tune_req(vec![vec!["64", "4", "[64][4]f32"]])).unwrap();
    assert_eq!(third.get("cached").and_then(obs::json::Value::as_bool), Some(false));
    assert_eq!(server.daemon().tuning.hits(), 1);
    assert_eq!(server.daemon().tuning.misses(), 2);

    server.stop();
}

#[test]
fn busy_rejection_when_the_queue_is_full() {
    // Capacity-1 queue and a single worker: concurrent heavier requests
    // must overflow and be rejected with `busy`.
    let server = start_server(ServerConfig {
        workers: 1,
        queue: 1,
        batch: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let source = std::fs::read_to_string("examples/matmul.fut").unwrap();
    let specs: Vec<String> =
        ["48", "48", "48", "[48][48]f32", "[48][48]f32"].iter().map(|s| s.to_string()).collect();
    let busy = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for i in 0..12 {
        let source = source.clone();
        let specs = specs.clone();
        let busy = std::sync::Arc::clone(&busy);
        let done = std::sync::Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            // Distinct variants force distinct compiles, keeping the
            // single worker occupied long enough to overflow the queue.
            let src = format!("-- busy {i}\n{source}");
            match c.exec_source(&src, "matmul", &specs) {
                Ok(_) => {
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Err(ClientError::Service(e)) if e.code == "busy" => {
                    busy.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let rejected = busy.load(std::sync::atomic::Ordering::Relaxed);
    let completed = done.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rejected + completed, 12);
    assert!(completed >= 1, "some requests must complete");
    assert_eq!(
        server.daemon().admit.rejected.load(std::sync::atomic::Ordering::Relaxed),
        rejected
    );
    server.stop();
}
