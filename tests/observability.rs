//! End-to-end tests of the `flat-obs` observability layer: the
//! simulator's per-kernel records must reconcile exactly with its cost
//! report, the `flatc` observability flags must work against the
//! checked-in example programs, and the emitted traces must be valid
//! Chrome trace-event JSON (parsed back with the same JSON library).

use incremental_flattening::prelude::*;
use obs::json::Value;
use std::process::Command;

fn matmul_flat() -> compiler::Flattened {
    let src = std::fs::read_to_string(example("matmul.fut")).unwrap();
    let prog = lang::compile(&src, "matmul").unwrap();
    compiler::flatten_incremental(&prog).unwrap()
}

fn matmul_args(n: i64, m: i64, p: i64) -> Vec<gpu::AbsValue> {
    vec![
        gpu::AbsValue::known(ir::Const::I64(n)),
        gpu::AbsValue::known(ir::Const::I64(m)),
        gpu::AbsValue::known(ir::Const::I64(p)),
        gpu::AbsValue::array(vec![n, m], ir::ScalarType::F32),
        gpu::AbsValue::array(vec![m, p], ir::ScalarType::F32),
    ]
}

fn example(name: &str) -> String {
    format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn flatc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flatc"))
        .args(args)
        .output()
        .expect("flatc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The acceptance-criteria invariant: per-kernel cycle totals sum to the
/// simulator's total cost, and the launch counts reconcile, across every
/// code version the thresholds can select.
#[test]
fn kernel_records_reconcile_with_the_cost_report() {
    let fl = matmul_flat();
    let dev = gpu::DeviceSpec::k40();
    for setting in [0, Thresholds::DEFAULT, i64::MAX] {
        let t = Thresholds::uniform(fl.thresholds.ids(), setting);
        for (n, m, p) in [(64, 1024, 64), (4096, 16, 16), (2, 8, 2)] {
            let rep =
                gpu::simulate(&fl.prog, &matmul_args(n, m, p), &t, &dev).unwrap();
            assert!(!rep.kernels.is_empty(), "simulation launched no kernels");
            let cycle_sum: f64 = rep.kernels.iter().map(|k| k.cost.cycles).sum();
            assert_eq!(
                cycle_sum, rep.cost.total_cycles,
                "thresholds={setting} {n}x{m}x{p}: per-kernel cycles must \
                 sum exactly to the report total"
            );
            let launches: u64 = rep.kernels.iter().map(|k| k.launches).sum();
            assert_eq!(launches, rep.cost.kernel_launches);
            let fallbacks =
                rep.kernels.iter().filter(|k| k.cost.used_local_fallback).count() as u64;
            assert_eq!(fallbacks, rep.cost.local_fallbacks);
        }
    }
}

#[test]
fn explain_prints_the_rule_derivation() {
    let (ok, stdout, _) = flatc(&["flatten", &example("matmul.fut"), "matmul", "--explain"]);
    assert!(ok);
    assert!(stdout.contains("-- rule firings --"), "{stdout}");
    assert!(stdout.contains("-- derivation --"), "{stdout}");
    assert!(stdout.contains("G3"), "{stdout}");
}

/// `simulate --profile` lists exactly as many kernels as the SimReport
/// recorded, with a matching launch total in the footer.
#[test]
fn profile_table_matches_the_report() {
    let fl = matmul_flat();
    let dev = gpu::DeviceSpec::k40();
    let rep = gpu::simulate(
        &fl.prog,
        &matmul_args(64, 1024, 64),
        &Thresholds::new(),
        &dev,
    )
    .unwrap();

    let (ok, stdout, _) = flatc(&[
        "simulate", &example("matmul.fut"), "matmul", "--profile",
        "--arg", "64", "--arg", "1024", "--arg", "64",
        "--arg", "[64][1024]f32", "--arg", "[1024][64]f32",
    ]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains(&format!(
            "{} kernel(s), {} launch(es)",
            rep.kernels.len(),
            rep.cost.kernel_launches
        )),
        "profile table disagrees with SimReport:\n{stdout}"
    );
    // One table row per recorded kernel.
    for k in &rep.kernels {
        assert!(stdout.contains(k.kind), "missing kind {} in\n{stdout}", k.kind);
    }
}

/// `simulate --trace` emits a valid Chrome trace-event document whose
/// events cover the whole simulated timeline.
#[test]
fn simulate_trace_is_valid_chrome_json() {
    let path = std::env::temp_dir().join(format!("flatc-obs-{}.json", std::process::id()));
    let path_s = path.to_str().unwrap();
    let (ok, stdout, stderr) = flatc(&[
        "simulate", &example("matmul.fut"), "matmul", "--trace", path_s,
        "--arg", "64", "--arg", "1024", "--arg", "64",
        "--arg", "[64][1024]f32", "--arg", "[1024][64]f32",
    ]);
    assert!(ok, "{stdout}{stderr}");

    let doc: Value = obs::json::from_str(&std::fs::read_to_string(&path).unwrap())
        .expect("trace file must parse as JSON");
    std::fs::remove_file(&path).ok();

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
        for field in ["name", "cat", "ts", "dur", "pid", "tid"] {
            assert!(ev.get(field).is_some(), "missing {field}: {ev:?}");
        }
        assert!(ev.get("dur").and_then(Value::as_f64).unwrap() > 0.0);
    }
}

/// `tune --trace` writes one JSON object per evaluation, with a
/// monotonically non-increasing best-so-far.
#[test]
fn tune_trace_is_jsonl_with_monotone_best() {
    let path = std::env::temp_dir().join(format!("flatc-tune-{}.jsonl", std::process::id()));
    let path_s = path.to_str().unwrap();
    let (ok, stdout, stderr) = flatc(&[
        "tune", &example("sumrows.fut"), "sumrows", "--exhaustive", "--trace", path_s,
        "--dataset", "16,65536,[16][65536]f32",
        "--dataset", "65536,16,[65536][16]f32",
    ]);
    assert!(ok, "{stdout}{stderr}");

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut best = f64::INFINITY;
    let mut lines = 0;
    for line in text.lines() {
        let ev: Value = obs::json::from_str(line).expect("each line parses");
        for field in ["candidate", "thresholds", "cost", "best_so_far", "improved"] {
            assert!(ev.get(field).is_some(), "missing {field}: {line}");
        }
        let b = ev.get("best_so_far").and_then(Value::as_f64).unwrap();
        assert!(b <= best + 1e-9, "best_so_far must not regress: {line}");
        best = b;
        lines += 1;
    }
    assert!(lines > 0, "tune trace must contain evaluations");
}

/// `--quiet` drops the informational stderr line; argument-parse errors
/// print usage but downstream failures do not.
#[test]
fn quiet_and_error_classes() {
    let (ok, _, stderr) = flatc(&["flatten", &example("matmul.fut"), "matmul", "--quiet"]);
    assert!(ok);
    assert!(!stderr.contains("statements"), "{stderr}");

    let (ok2, _, stderr2) = flatc(&["simulate", &example("matmul.fut"), "matmul",
        "--device", "notadevice", "--arg", "1"]);
    assert!(!ok2);
    assert!(stderr2.contains("usage:"), "bad --device is a usage error: {stderr2}");

    let (ok3, _, stderr3) = flatc(&["check", &example("nope.fut"), "matmul"]);
    assert!(!ok3);
    assert!(!stderr3.contains("usage:"), "I/O failure is not a usage error: {stderr3}");
}

/// The FLAT_OBS environment variable attaches sinks: the summary sink
/// reports the compiler pass spans and rule counters.
#[test]
fn flat_obs_summary_sink_reports_compiler_metrics() {
    let out = Command::new(env!("CARGO_BIN_EXE_flatc"))
        .args(["flatten", &example("matmul.fut"), "matmul"])
        .env("FLAT_OBS", "summary")
        .output()
        .expect("flatc runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pass.flatten"), "{stderr}");
    assert!(stderr.contains("compiler.rule.G3"), "{stderr}");
}
