//! Integration tests for the `flatc` command-line tool, driving the real
//! binary end to end.

use std::process::Command;

fn flatc_status(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flatc"))
        .args(args)
        .output()
        .expect("flatc runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const MATMUL: &str = "
def matmul [n][m][p] (xss: [n][m]f32) (yss: [m][p]f32): [n][p]f32 =
  map (\\xs -> map (\\ys -> redomap (+) (*) 0f32 xs ys) (transpose yss)) xss
";

fn flatc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flatc"))
        .args(args)
        .output()
        .expect("flatc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn with_source(f: impl FnOnce(&str)) {
    let dir = std::env::temp_dir().join(format!("flatc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mm.fut");
    std::fs::write(&path, MATMUL).unwrap();
    f(path.to_str().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_reports_signature() {
    with_source(|src| {
        let (ok, stdout, _) = flatc(&["check", src, "matmul"]);
        assert!(ok);
        assert!(stdout.contains("5 parameters"), "{stdout}");
    });
}

#[test]
fn flatten_prints_versions_and_stats() {
    with_source(|src| {
        let (ok, stdout, stderr) = flatc(&["flatten", src, "matmul"]);
        assert!(ok);
        assert!(stdout.contains("segmap^1"), "{stdout}");
        assert!(stderr.contains("thresholds"), "{stderr}");
        // Moderate mode prints no guards.
        let (ok2, stdout2, _) = flatc(&["flatten", src, "matmul", "--moderate"]);
        assert!(ok2);
        assert!(!stdout2.contains(">= t"), "{stdout2}");
    });
}

#[test]
fn tree_prints_threshold_names() {
    with_source(|src| {
        let (ok, stdout, _) = flatc(&["tree", src, "matmul"]);
        assert!(ok);
        assert!(stdout.contains("suff_outer_par_0"), "{stdout}");
    });
}

#[test]
fn simulate_reports_runtime_and_path() {
    with_source(|src| {
        let (ok, stdout, _) = flatc(&[
            "simulate", src, "matmul",
            "--device", "vega64",
            "--arg", "64",
            "--arg", "1024",
            "--arg", "64",
            "--arg", "[64][1024]f32",
            "--arg", "[1024][64]f32",
        ]);
        assert!(ok, "{stdout}");
        assert!(stdout.contains("Vega64"));
        assert!(stdout.contains("runtime:"));
        assert!(stdout.contains("version path:"));
    });
}

#[test]
fn tune_writes_and_simulate_reads_tuning_files() {
    with_source(|src| {
        let tuning = std::env::temp_dir().join(format!("flatc-{}.tuning", std::process::id()));
        let tuning_s = tuning.to_str().unwrap();
        let (ok, stdout, _) = flatc(&[
            "tune", src, "matmul", "--exhaustive", "--out", tuning_s,
            "--dataset", "4,65536,4,[4][65536]f32,[65536][4]f32",
            "--dataset", "512,16,512,[512][16]f32,[16][512]f32",
        ]);
        assert!(ok, "{stdout}");
        assert!(stdout.contains("tuned in"), "{stdout}");
        let contents = std::fs::read_to_string(&tuning).unwrap();
        assert!(contents.contains("suff_outer_par_0="), "{contents}");

        let (ok2, stdout2, _) = flatc(&[
            "simulate", src, "matmul", "--tuning", tuning_s,
            "--arg", "4", "--arg", "65536", "--arg", "4",
            "--arg", "[4][65536]f32", "--arg", "[65536][4]f32",
        ]);
        assert!(ok2, "{stdout2}");
        let _ = std::fs::remove_file(&tuning);
    });
}

#[test]
fn exec_runs_and_live_dispatch_follows_thresholds() {
    with_source(|src| {
        let args = [
            "--arg", "8", "--arg", "16", "--arg", "8",
            "--arg", "[8][16]f32", "--arg", "[16][8]f32",
        ];
        let mut base = vec!["exec", src, "matmul", "--threads", "2"];
        base.extend_from_slice(&args);
        let (ok, stdout, stderr) = flatc(&base);
        assert!(ok, "{stdout}{stderr}");
        assert!(stdout.contains("backend:       exec (2 threads)"), "{stdout}");
        assert!(stdout.contains("runtime:"), "{stdout}");
        assert!(stdout.contains("version path:"), "{stdout}");
        assert!(stdout.contains("result 0:      [8][8]"), "{stdout}");
        let default_path = stdout
            .lines()
            .find(|l| l.starts_with("version path:"))
            .unwrap()
            .to_string();

        // Forcing a threshold down to 1 must flip the live dispatch:
        // the actual Par(8) degree now satisfies the guard.
        let mut forced = vec![
            "exec", src, "matmul", "--threads", "2",
            "--threshold", "suff_outer_par_0=1",
        ];
        forced.extend_from_slice(&args);
        let (ok2, stdout2, _) = flatc(&forced);
        assert!(ok2, "{stdout2}");
        assert!(stdout2.contains("suff_outer_par_0(8)=true"), "{stdout2}");
        let forced_path = stdout2
            .lines()
            .find(|l| l.starts_with("version path:"))
            .unwrap()
            .to_string();
        assert_ne!(default_path, forced_path, "threshold did not change dispatch");

        // Determinism across thread counts: identical results and path.
        let mut eight = vec!["exec", src, "matmul", "--threads", "8"];
        eight.extend_from_slice(&args);
        let (ok3, stdout3, _) = flatc(&eight);
        assert!(ok3, "{stdout3}");
        let path8 = stdout3
            .lines()
            .find(|l| l.starts_with("version path:"))
            .unwrap()
            .to_string();
        assert_eq!(default_path, path8);
    });
}

#[test]
fn exec_tune_measures_wall_clock_and_writes_usable_tuning() {
    with_source(|src| {
        let tuning =
            std::env::temp_dir().join(format!("flatc-exec-{}.tuning", std::process::id()));
        let tuning_s = tuning.to_str().unwrap();
        let (ok, stdout, stderr) = flatc(&[
            "tune", src, "matmul", "--backend", "exec", "--threads", "2",
            "--reps", "1", "--out", tuning_s,
            "--dataset", "16,64,16,[16][64]f32,[64][16]f32",
            "--dataset", "4,8,4,[4][8]f32,[8][4]f32",
        ]);
        assert!(ok, "{stdout}{stderr}");
        assert!(stdout.contains("tuned in"), "{stdout}");
        let contents = std::fs::read_to_string(&tuning).unwrap();
        assert!(contents.contains("suff_outer_par_0="), "{contents}");

        // The wall-clock-tuned file drives live dispatch in `exec`.
        let (ok2, stdout2, _) = flatc(&[
            "exec", src, "matmul", "--threads", "2", "--tuning", tuning_s,
            "--arg", "16", "--arg", "64", "--arg", "16",
            "--arg", "[16][64]f32", "--arg", "[64][16]f32",
        ]);
        assert!(ok2, "{stdout2}");
        assert!(stdout2.contains("version path:"), "{stdout2}");
        let _ = std::fs::remove_file(&tuning);
    });
}

#[test]
fn bench_refuses_cross_backend_comparison() {
    let (ok, _, stderr) = flatc(&["bench", "--backend", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --backend"), "{stderr}");

    let base = std::env::temp_dir().join(format!("flatc-base-{}.json", std::process::id()));
    let base_s = base.to_str().unwrap();
    let (ok, stdout, stderr) = flatc(&[
        "bench", "--backend", "exec", "--threads", "2", "--reps", "1",
        "--baseline", base_s, "--write", "--quiet",
    ]);
    assert!(ok, "{stdout}{stderr}");

    let (ok2, _, stderr2) =
        flatc(&["bench", "--baseline", base_s, "--check", "--quiet"]);
    assert!(!ok2, "cross-backend check must fail");
    assert!(
        stderr2.contains("cannot compare across backends"),
        "{stderr2}"
    );
    let _ = std::fs::remove_file(&base);
}

#[test]
fn lint_is_clean_on_healthy_programs_and_compile_verify_passes() {
    with_source(|src| {
        let (code, stdout, _) = flatc_status(&["lint", src, "matmul"]);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(stdout.contains("lint clean across 6 stages"), "{stdout}");

        // --json prints one JSON object per diagnostic line; a clean
        // program prints nothing at all.
        let (code, stdout, _) = flatc_status(&["lint", src, "matmul", "--json"]);
        assert_eq!(code, Some(0));
        assert!(stdout.is_empty(), "clean --json run must emit no lines: {stdout}");

        // `compile` is `flatten` plus the inter-pass verifier.
        let (code, stdout, stderr) =
            flatc_status(&["compile", src, "matmul", "--verify"]);
        assert_eq!(code, Some(0), "{stderr}");
        assert!(stdout.contains("segmap^1"), "{stdout}");
        assert!(stderr.contains("verify: clean"), "{stderr}");
    });
}

/// Parse, type, and lint failures must be distinguishable by exit code
/// alone: 2, 3, 4 (lint errors are only reachable on buggy pass output,
/// so here we pin the first two plus the usage code).
#[test]
fn parse_and_type_failures_have_distinct_exit_codes() {
    let dir = std::env::temp_dir().join(format!("flatc-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let parse_p = dir.join("parse.fut");
    let type_p = dir.join("type.fut");
    std::fs::write(&parse_p, "def main (x: i64) = (((\n").unwrap();
    std::fs::write(&type_p, "def main (x: i64) = ys\n").unwrap();
    for cmd in ["check", "lint"] {
        let (code, _, stderr) = flatc_status(&[cmd, parse_p.to_str().unwrap(), "main"]);
        assert_eq!(code, Some(2), "{cmd} parse error: {stderr}");
        assert!(stderr.contains("parse error"), "{stderr}");
        let (code, _, stderr) = flatc_status(&[cmd, type_p.to_str().unwrap(), "main"]);
        assert_eq!(code, Some(3), "{cmd} type error: {stderr}");
        assert!(stderr.contains("type error"), "{stderr}");
    }
    let (code, _, _) = flatc_status(&["lint"]);
    assert_eq!(code, Some(1), "usage errors keep exit 1");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = flatc(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    with_source(|src| {
        let (ok2, _, stderr2) = flatc(&["simulate", src, "matmul", "--arg", "not-a-thing"]);
        assert!(!ok2);
        assert!(stderr2.contains("cannot parse"), "{stderr2}");

        let (ok3, _, stderr3) = flatc(&["simulate", src, "nope"]);
        assert!(!ok3);
        assert!(stderr3.contains("nope"), "{stderr3}");
    });
}
