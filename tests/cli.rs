//! Integration tests for the `flatc` command-line tool, driving the real
//! binary end to end.

use std::process::Command;

const MATMUL: &str = "
def matmul [n][m][p] (xss: [n][m]f32) (yss: [m][p]f32): [n][p]f32 =
  map (\\xs -> map (\\ys -> redomap (+) (*) 0f32 xs ys) (transpose yss)) xss
";

fn flatc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flatc"))
        .args(args)
        .output()
        .expect("flatc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn with_source(f: impl FnOnce(&str)) {
    let dir = std::env::temp_dir().join(format!("flatc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mm.fut");
    std::fs::write(&path, MATMUL).unwrap();
    f(path.to_str().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_reports_signature() {
    with_source(|src| {
        let (ok, stdout, _) = flatc(&["check", src, "matmul"]);
        assert!(ok);
        assert!(stdout.contains("5 parameters"), "{stdout}");
    });
}

#[test]
fn flatten_prints_versions_and_stats() {
    with_source(|src| {
        let (ok, stdout, stderr) = flatc(&["flatten", src, "matmul"]);
        assert!(ok);
        assert!(stdout.contains("segmap^1"), "{stdout}");
        assert!(stderr.contains("thresholds"), "{stderr}");
        // Moderate mode prints no guards.
        let (ok2, stdout2, _) = flatc(&["flatten", src, "matmul", "--moderate"]);
        assert!(ok2);
        assert!(!stdout2.contains(">= t"), "{stdout2}");
    });
}

#[test]
fn tree_prints_threshold_names() {
    with_source(|src| {
        let (ok, stdout, _) = flatc(&["tree", src, "matmul"]);
        assert!(ok);
        assert!(stdout.contains("suff_outer_par_0"), "{stdout}");
    });
}

#[test]
fn simulate_reports_runtime_and_path() {
    with_source(|src| {
        let (ok, stdout, _) = flatc(&[
            "simulate", src, "matmul",
            "--device", "vega64",
            "--arg", "64",
            "--arg", "1024",
            "--arg", "64",
            "--arg", "[64][1024]f32",
            "--arg", "[1024][64]f32",
        ]);
        assert!(ok, "{stdout}");
        assert!(stdout.contains("Vega64"));
        assert!(stdout.contains("runtime:"));
        assert!(stdout.contains("version path:"));
    });
}

#[test]
fn tune_writes_and_simulate_reads_tuning_files() {
    with_source(|src| {
        let tuning = std::env::temp_dir().join(format!("flatc-{}.tuning", std::process::id()));
        let tuning_s = tuning.to_str().unwrap();
        let (ok, stdout, _) = flatc(&[
            "tune", src, "matmul", "--exhaustive", "--out", tuning_s,
            "--dataset", "4,65536,4,[4][65536]f32,[65536][4]f32",
            "--dataset", "512,16,512,[512][16]f32,[16][512]f32",
        ]);
        assert!(ok, "{stdout}");
        assert!(stdout.contains("tuned in"), "{stdout}");
        let contents = std::fs::read_to_string(&tuning).unwrap();
        assert!(contents.contains("suff_outer_par_0="), "{contents}");

        let (ok2, stdout2, _) = flatc(&[
            "simulate", src, "matmul", "--tuning", tuning_s,
            "--arg", "4", "--arg", "65536", "--arg", "4",
            "--arg", "[4][65536]f32", "--arg", "[65536][4]f32",
        ]);
        assert!(ok2, "{stdout2}");
        let _ = std::fs::remove_file(&tuning);
    });
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = flatc(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    with_source(|src| {
        let (ok2, _, stderr2) = flatc(&["simulate", src, "matmul", "--arg", "not-a-thing"]);
        assert!(!ok2);
        assert!(stderr2.contains("cannot parse"), "{stderr2}");

        let (ok3, _, stderr3) = flatc(&["simulate", src, "nope"]);
        assert!(!ok3);
        assert!(stderr3.contains("nope"), "{stderr3}");
    });
}
