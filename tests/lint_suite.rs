//! The flat-verify acceptance suite.
//!
//! * **Positive half**: every program in `examples/` and
//!   `tests/corpus/` verifies with *zero* diagnostics after every pass
//!   (elaboration, fusion, both flattening modes, simplification) —
//!   the invariant behind `flatc compile --verify`.
//! * **Negative half**: every rule code has at least one failing test.
//!   Each case in `tests/lint/*.fut` is a healthy program plus a named
//!   corruption (`-- inject:`) applied at a specific stage, golden-
//!   matched against `-- expect: VXXX @line:col` headers — rule code
//!   *and* source location, exercising the provenance anchoring.

use incremental_flattening::compiler::{flatten, FlattenConfig};
use incremental_flattening::lang;
use incremental_flattening::verify::{self, inject, VRule};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// `examples/matmul.fut` → entry `matmul`; corpus files all use `main`.
fn entry_of(path: &Path, src: &str) -> String {
    if src.contains("def main") {
        "main".to_string()
    } else {
        path.file_stem().unwrap().to_string_lossy().into_owned()
    }
}

fn fut_files(dir: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(repo_file(dir))
        .unwrap_or_else(|e| panic!("reading {dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "fut"))
        .collect();
    files.sort();
    files
}

#[test]
fn examples_and_corpus_verify_clean_after_every_pass() {
    let mut checked = 0;
    for dir in ["examples", "tests/corpus"] {
        for path in fut_files(dir) {
            let src = fs::read_to_string(&path).unwrap();
            let entry = entry_of(&path, &src);
            let report = verify::verify_pipeline(&src, &entry)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", path.display()));
            let rendered: Vec<String> = report.iter().map(|(stage, d)| d.render(stage)).collect();
            assert_eq!(
                report.total(),
                0,
                "{} must verify clean, got:\n{}",
                path.display(),
                rendered.join("\n")
            );
            // Six stages: elaborate, fuse, flatten+simplify × 2 modes.
            assert_eq!(report.stages.len(), 6, "{}", path.display());
            checked += 1;
        }
    }
    assert!(
        checked >= 6,
        "expected to sweep at least 6 programs, got {checked}"
    );
}

/// Parse the `-- inject:` / `-- entry:` / `-- expect:` headers of a
/// negative-test case.
struct LintCase {
    inject: String,
    entry: String,
    expects: Vec<(VRule, u32, u32)>,
}

fn parse_case(path: &Path, src: &str) -> LintCase {
    let mut inject = None;
    let mut entry = "main".to_string();
    let mut expects = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.strip_prefix("-- ") else {
            continue;
        };
        if let Some(v) = rest.strip_prefix("inject: ") {
            inject = Some(v.trim().to_string());
        } else if let Some(v) = rest.strip_prefix("entry: ") {
            entry = v.trim().to_string();
        } else if let Some(v) = rest.strip_prefix("expect: ") {
            // e.g. `V101 @3:3`
            let mut parts = v.split_whitespace();
            let code = parts.next().expect("expect needs a rule code");
            let rule = VRule::from_code(code)
                .unwrap_or_else(|| panic!("{}: unknown rule {code}", path.display()));
            let loc = parts
                .next()
                .and_then(|l| l.strip_prefix('@'))
                .unwrap_or_else(|| panic!("{}: expect needs @line:col", path.display()));
            let (line_s, col_s) = loc.split_once(':').unwrap();
            expects.push((rule, line_s.parse().unwrap(), col_s.parse().unwrap()));
        }
    }
    LintCase {
        inject: inject.unwrap_or_else(|| panic!("{}: missing -- inject:", path.display())),
        entry,
        expects,
    }
}

/// Compile a negative case, apply its injection at the declared stage,
/// and return the diagnostics of the corrupted stage.
fn run_case(path: &Path) -> (LintCase, Vec<verify::Diagnostic>) {
    let src = fs::read_to_string(path).unwrap();
    let case = parse_case(path, &src);
    let prog = lang::compile(&src, &case.entry)
        .unwrap_or_else(|e| panic!("{}: must compile before injection: {e}", path.display()));
    let diags = match inject::stage_of(&case.inject) {
        Some(inject::Stage::PostElab) => {
            let mut prog = prog;
            inject::apply_to_program(&case.inject, &mut prog)
                .unwrap_or_else(|e| panic!("{}: injection failed: {e}", path.display()));
            verify::verify_program(&prog)
        }
        Some(inject::Stage::PostFlatten) => {
            let mut cfg = FlattenConfig::incremental();
            cfg.simplify = false;
            let mut fl = flatten(&prog, &cfg).unwrap();
            inject::apply_to_flattened(&case.inject, &mut fl)
                .unwrap_or_else(|e| panic!("{}: injection failed: {e}", path.display()));
            verify::verify_flattened(&fl)
        }
        None => panic!("{}: unknown injection `{}`", path.display(), case.inject),
    };
    (case, diags)
}

#[test]
fn negative_suite_matches_rule_codes_and_locations() {
    let files = fut_files("tests/lint");
    assert!(!files.is_empty(), "tests/lint must contain negative cases");
    let mut covered: std::collections::BTreeSet<VRule> = Default::default();
    for path in &files {
        let (case, diags) = run_case(path);
        assert!(
            !diags.is_empty(),
            "{}: injection `{}` produced no diagnostics",
            path.display(),
            case.inject
        );
        let rendered: Vec<String> = diags.iter().map(|d| d.render("test")).collect();
        for (rule, line, col) in &case.expects {
            assert!(
                diags
                    .iter()
                    .any(|d| d.rule == *rule && d.loc.line == *line && d.loc.col == *col),
                "{}: expected {} @{line}:{col}, got:\n{}",
                path.display(),
                rule.code(),
                rendered.join("\n")
            );
            covered.insert(*rule);
        }
        // The injection is surgical: nothing outside the expected rule
        // set may fire (warnings included).
        let expected_rules: std::collections::BTreeSet<VRule> =
            case.expects.iter().map(|(r, _, _)| *r).collect();
        for d in &diags {
            assert!(
                expected_rules.contains(&d.rule),
                "{}: unexpected extra diagnostic:\n{}",
                path.display(),
                d.render("test")
            );
        }
    }
    // Every rule code has at least one failing negative test.
    for rule in verify::ALL_RULES {
        assert!(
            covered.contains(&rule),
            "rule {} has no negative test in tests/lint/",
            rule.code()
        );
    }
}

/// Injections fire on *post-pass* IR; the verified-clean sweep above
/// plus this test pin the verifier's two-sidedness: same program, no
/// injection → silent; with injection → exactly the expected rule.
#[test]
fn injection_base_programs_are_clean() {
    for path in fut_files("tests/lint") {
        let src = fs::read_to_string(&path).unwrap();
        let case = parse_case(&path, &src);
        let report = verify::verify_pipeline(&src, &case.entry)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", path.display()));
        assert_eq!(
            report.total(),
            0,
            "{}: base program must verify clean before injection",
            path.display()
        );
    }
}
