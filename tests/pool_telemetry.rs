//! Regression tests for telemetry isolation on a *shared* worker pool.
//!
//! `workpool` process-caches pools by thread count, so two programs
//! running "at the same time" with the same `--threads` share one pool.
//! The original implementation toggled the pool-global telemetry and
//! span-recording flags on entry/exit of every run: a telemetry-off run
//! finishing first would switch the flags off underneath a concurrent
//! telemetry-on run (losing its counters and spans), and two traced
//! runs would steal spans from each other's span logs.
//!
//! The fix is a reference-counted telemetry session (the flag drops
//! only when the *last* session ends), an exclusive span-recording
//! token, and process-unique kernel tags so a run keeps exactly its own
//! spans. These tests drive both executors concurrently on one pool and
//! pin that behaviour.

use incremental_flattening::prelude::*;

use exec::ExecConfig;
use flat_ir::interp::Thresholds;
use ir::value::{Buffer, Value};
use std::collections::HashSet;

const SRC: &str = "def main [n][m] (xss: [n][m]f32): [n]f32 =\n  map (\\xs -> reduce (+) 0f32 xs) xss\n";

fn flattened() -> compiler::Flattened {
    let prog = lang::compile(SRC, "main").unwrap();
    compiler::flatten_incremental(&prog).unwrap()
}

fn args(n: i64, m: i64, seed: u64) -> Vec<Value> {
    let abs = vec![
        gpu::AbsValue::known(ir::Const::I64(n)),
        gpu::AbsValue::known(ir::Const::I64(m)),
        gpu::AbsValue::array(vec![n, m], ir::ScalarType::F32),
    ];
    exec::materialize(&abs, seed).unwrap()
}

fn cfg(telemetry: bool, worker_trace: bool) -> ExecConfig {
    ExecConfig {
        thresholds: Thresholds::new(),
        threads: Some(4), // same count on every run -> same cached pool
        telemetry,
        worker_trace,
        ..ExecConfig::default()
    }
}

/// A traced run's spans must all carry its own launch tags, and its
/// pool-counter delta must survive concurrent untraced runs finishing
/// (and formerly switching telemetry off) underneath it.
#[test]
fn concurrent_runs_on_a_shared_pool_keep_telemetry_isolated() {
    let fl = flattened();
    let vals_traced = args(64, 64, 7);
    let vals_plain = args(32, 32, 8);

    for round in 0..8 {
        let (traced, plain) = std::thread::scope(|s| {
            let fl_ref = &fl;
            let tv = &vals_traced;
            let pv = &vals_plain;
            let a = s.spawn(move || {
                exec::run_program(&fl_ref.prog, tv, &cfg(true, true)).unwrap()
            });
            // Several short telemetry-off runs maximize the chance one
            // finishes while the traced run is mid-flight.
            let b = s.spawn(move || {
                let mut last = None;
                for _ in 0..4 {
                    last = Some(exec::run_program(&fl_ref.prog, pv, &cfg(false, false)).unwrap());
                }
                last.unwrap()
            });
            (a.join().unwrap(), b.join().unwrap())
        });

        assert!(
            traced.pool.is_some(),
            "round {round}: traced run lost its pool telemetry"
        );
        assert!(plain.pool.is_none(), "round {round}: untraced run grew telemetry");

        // Spans, when recorded, belong to this run's launches only.
        let own: HashSet<u64> =
            traced.launches.iter().map(|l| l.tag).filter(|&t| t != 0).collect();
        assert!(
            !traced.spans.is_empty(),
            "round {round}: traced run recorded no spans"
        );
        for span in &traced.spans {
            assert!(
                own.contains(&span.tag),
                "round {round}: span tag {} belongs to another run",
                span.tag
            );
        }
        assert!(plain.spans.is_empty(), "round {round}: untraced run stole spans");
    }
}

/// Both backends (tree-walking executor and VM) share the pool; a
/// traced VM run concurrent with untraced executor runs keeps its own
/// spans and telemetry, and the results stay bitwise identical to a
/// solo run.
#[test]
fn vm_and_exec_share_the_pool_without_cross_talk() {
    let fl = flattened();
    let compiled = vm::compile(&fl.prog).unwrap();
    let vals = args(48, 32, 9);
    let solo = vm::run_compiled(&compiled, &vals, &cfg(false, false)).unwrap();

    for _ in 0..4 {
        let (traced, _) = std::thread::scope(|s| {
            let cref = &compiled;
            let fref = &fl;
            let vref = &vals;
            let a = s.spawn(move || {
                vm::run_compiled(cref, vref, &cfg(true, true)).unwrap()
            });
            let b = s.spawn(move || {
                for _ in 0..4 {
                    exec::run_program(&fref.prog, vref, &cfg(false, false)).unwrap();
                }
            });
            (a.join().unwrap(), b.join().unwrap())
        });

        assert!(traced.pool.is_some());
        let own: HashSet<u64> =
            traced.launches.iter().map(|l| l.tag).filter(|&t| t != 0).collect();
        for span in &traced.spans {
            assert!(own.contains(&span.tag), "vm run kept a foreign span");
        }
        // Telemetry plumbing must not perturb results.
        assert_eq!(traced.values.len(), solo.values.len());
        for (a, b) in traced.values.iter().zip(&solo.values) {
            match (a, b) {
                (Value::Array(x), Value::Array(y)) => {
                    assert_eq!(x.shape, y.shape);
                    match (&x.data, &y.data) {
                        (Buffer::F32(p), Buffer::F32(q)) => {
                            assert_eq!(
                                p.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                q.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                            );
                        }
                        (p, q) => assert_eq!(p, q),
                    }
                }
                (x, y) => assert_eq!(x, y),
            }
        }
    }
}

/// Two *traced* runs at once: the span-recording token serializes span
/// capture, but both must complete, and each gets spans for its own
/// kernels only.
#[test]
fn two_traced_runs_serialize_span_recording() {
    let fl = flattened();
    let va = args(40, 24, 3);
    let vb = args(24, 40, 4);

    let (ra, rb) = std::thread::scope(|s| {
        let fr = &fl;
        let va = &va;
        let vb = &vb;
        let a = s.spawn(move || exec::run_program(&fr.prog, va, &cfg(true, true)).unwrap());
        let b = s.spawn(move || exec::run_program(&fr.prog, vb, &cfg(true, true)).unwrap());
        (a.join().unwrap(), b.join().unwrap())
    });

    for (name, rep) in [("a", &ra), ("b", &rb)] {
        assert!(rep.pool.is_some(), "run {name} lost telemetry");
        assert!(!rep.spans.is_empty(), "run {name} recorded no spans");
        let own: HashSet<u64> =
            rep.launches.iter().map(|l| l.tag).filter(|&t| t != 0).collect();
        for span in &rep.spans {
            assert!(own.contains(&span.tag), "run {name} kept a foreign span");
        }
    }
    // The tag spaces of the two runs are disjoint.
    let tags_a: HashSet<u64> = ra.launches.iter().map(|l| l.tag).collect();
    let tags_b: HashSet<u64> = rb.launches.iter().map(|l| l.tag).collect();
    assert!(tags_a.is_disjoint(&tags_b), "kernel tags must be process-unique");
}
