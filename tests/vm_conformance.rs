//! Conformance tests for the `flat-vm` bytecode tier: on every example,
//! corpus seed, and benchmark, the VM must be **bitwise
//! interchangeable** with the tree-walking executor — identical result
//! bits and identical `path_signature` at every thread count and grain
//! — while both stay in the interpreter-agreement envelope
//! `tests/executor.rs` establishes (integers exact everywhere; floats
//! bitwise at the single-block default grain, approximately equal under
//! multi-block reassociation).
//!
//! The vm-vs-exec comparison is *unconditionally* bitwise, floats
//! included: the VM inherits `flat-exec`'s exact decomposition (chunk
//! boundaries, block partials, combine order), so there is no
//! reassociation between the two backends to forgive.
//!
//! Two disassembly goldens pin the bytecode lowering: register
//! assignment, monomorphic opcode selection, and the compiled segop
//! structure for a `segmap` and a `segred`.

use incremental_flattening::prelude::*;

use exec::{ExecConfig, ExecReport};
use flat_ir::interp::Thresholds;
use ir::value::{Buffer, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const SMALL_GRAIN: usize = 4;

fn cfg(threads: usize, grain: usize) -> ExecConfig {
    ExecConfig {
        thresholds: Thresholds::new(),
        threads: Some(threads),
        grain,
        ..ExecConfig::default()
    }
}

fn buffers_approx(a: &Buffer, b: &Buffer) -> bool {
    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0)
    }
    match (a, b) {
        (Buffer::F32(x), Buffer::F32(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(u, v)| close(*u as f64, *v as f64))
        }
        (Buffer::F64(x), Buffer::F64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| close(*u, *v))
        }
        _ => a == b,
    }
}

fn values_approx(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::Array(u), Value::Array(v)) => {
                u.shape == v.shape && buffers_approx(&u.data, &v.data)
            }
            (Value::Scalar(ir::Const::F32(u)), Value::Scalar(ir::Const::F32(v))) => {
                buffers_approx(&Buffer::F32(vec![*u]), &Buffer::F32(vec![*v]))
            }
            (Value::Scalar(ir::Const::F64(u)), Value::Scalar(ir::Const::F64(v))) => {
                buffers_approx(&Buffer::F64(vec![*u]), &Buffer::F64(vec![*v]))
            }
            _ => x == y,
        })
}

fn has_floats(vals: &[Value]) -> bool {
    vals.iter().any(|v| match v {
        Value::Scalar(c) => matches!(c, ir::Const::F32(_) | ir::Const::F64(_)),
        Value::Array(a) => matches!(a.data, Buffer::F32(_) | Buffer::F64(_)),
    })
}

/// The three-way conformance contract for one flattened program on one
/// argument list: interpreter vs executor vs VM at every thread count
/// and both grains.
fn check_conformance(name: &str, fl: &compiler::Flattened, args: &[Value]) {
    let reference = ir::interp::run_program(&fl.prog, args, &Thresholds::new())
        .unwrap_or_else(|e| panic!("{name}: interpreter failed: {e}"));
    let exact = !has_floats(&reference);

    for grain in [exec::DEFAULT_GRAIN, SMALL_GRAIN] {
        let mut first_vm: Option<ExecReport> = None;
        for &threads in &THREAD_COUNTS {
            let erep = exec::run_program(&fl.prog, args, &cfg(threads, grain))
                .unwrap_or_else(|e| {
                    panic!("{name}: exec ({threads} threads, grain {grain}): {e}")
                });
            let vrep = vm::run_program(&fl.prog, args, &cfg(threads, grain))
                .unwrap_or_else(|e| {
                    panic!("{name}: vm ({threads} threads, grain {grain}): {e}")
                });

            // The headline contract: the VM is bitwise interchangeable
            // with the executor — results, floats included, and the
            // live-dispatched threshold path.
            assert_eq!(
                vrep.values, erep.values,
                "{name}: grain {grain}, {threads} threads: vm diverges from exec"
            );
            assert_eq!(
                vrep.signature(),
                erep.signature(),
                "{name}: grain {grain}, {threads} threads: vm path differs from exec"
            );
            assert!(
                exec::path_in_tree(&fl.thresholds, &vrep.signature()),
                "{name}: vm live path {:?} not in the threshold tree",
                vrep.signature()
            );

            // And the VM is deterministic across thread counts on its
            // own terms, like the executor.
            match &first_vm {
                None => first_vm = Some(vrep),
                Some(first) => {
                    assert_eq!(
                        vrep.values, first.values,
                        "{name}: grain {grain}: vm at {threads} threads diverges from 1 thread"
                    );
                    assert_eq!(
                        vrep.signature(),
                        first.signature(),
                        "{name}: grain {grain}: vm path depends on thread count"
                    );
                }
            }
        }

        // Interpreter agreement, per the executor.rs envelope.
        let got = &first_vm.expect("at least one thread count").values;
        if exact {
            assert_eq!(got, &reference, "{name}: grain {grain}: vm != interpreter");
        } else if grain == exec::DEFAULT_GRAIN {
            assert_eq!(
                got, &reference,
                "{name}: single-block float vm run should be bitwise equal to the interpreter"
            );
        } else {
            assert!(
                values_approx(got, &reference),
                "{name}: grain {grain}: vm not even approximately equal to the interpreter"
            );
        }
    }
}

fn f32_matrix(rows: i64, cols: i64, seed: u64) -> Value {
    exec::materialize(&[gpu::AbsValue::array(vec![rows, cols], ir::ScalarType::F32)], seed)
        .unwrap()
        .pop()
        .unwrap()
}

fn f32_cube(a: i64, b: i64, c: i64, seed: u64) -> Value {
    exec::materialize(&[gpu::AbsValue::array(vec![a, b, c], ir::ScalarType::F32)], seed)
        .unwrap()
        .pop()
        .unwrap()
}

#[test]
fn examples_conform() {
    let matmul = std::fs::read_to_string("examples/matmul.fut").unwrap();
    let prog = lang::compile(&matmul, "matmul").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![
        Value::i64_(6),
        Value::i64_(10),
        Value::i64_(7),
        f32_matrix(6, 10, 1),
        f32_matrix(10, 7, 2),
    ];
    check_conformance("examples/matmul.fut", &fl, &args);

    let sumrows = std::fs::read_to_string("examples/sumrows.fut").unwrap();
    let prog = lang::compile(&sumrows, "sumrows").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![Value::i64_(5), Value::i64_(9), f32_matrix(5, 9, 3)];
    check_conformance("examples/sumrows.fut", &fl, &args);
}

/// The paper's flagship shape-dependent program: an outer map over a
/// sequential time loop of scan pipelines. Narrow-outer dataset so the
/// flattened inner versions get exercised too.
#[test]
fn locvolcalib_conforms() {
    let src = std::fs::read_to_string("examples/locvolcalib.fut").unwrap();
    let prog = lang::compile(&src, "locvolcalib").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![
        Value::i64_(16),
        Value::i64_(4),
        Value::i64_(8),
        f32_cube(16, 4, 8, 11),
        f32_cube(16, 8, 4, 12),
        Value::i64_(2),
    ];
    check_conformance("examples/locvolcalib.fut", &fl, &args);
}

#[test]
fn benchmark_suite_conforms() {
    let cfg = compiler::FlattenConfig::incremental();
    for b in bench_suite::all_benchmarks() {
        let fl = b.flatten(&cfg);
        let mut rng = StdRng::seed_from_u64(0xDE7E);
        let args = (b.test_args)(&mut rng);
        check_conformance(b.name, &fl, &args);
    }
}

#[test]
fn corpus_conforms() {
    let cases = fuzz::corpus::load_dir(std::path::Path::new("tests/corpus")).unwrap();
    assert!(!cases.is_empty(), "corpus directory should not be empty");
    for case in cases {
        let inputs = fuzz::oracle::FuzzInputs::from_seed(case.n, case.m, case.data_seed);
        let prog = lang::compile(&case.source, "main")
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let fl = compiler::flatten_incremental(&prog).unwrap();
        check_conformance(&case.name, &fl, &inputs.ir_args());
    }
}

/// Zero-extent degrees must flow through both backends as empty results
/// — never panics. This pins the fix for the executor's
/// panic-on-empty-segment family (`take_slot`/`partials.next` expects,
/// `ctx.last`, out-of-bounds indexing), all now structured `ExecError`s
/// or well-defined empty shapes.
#[test]
fn zero_extent_segments_run_on_both_backends() {
    let empty_i64 = |shape: Vec<i64>| Value::array_from(shape, Buffer::I64(vec![]));

    // segmap over zero elements.
    let src = "def main [n] (xs: [n]i64) =\n  map (\\x -> x + 1) xs\n";
    let prog = lang::compile(src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![Value::i64_(0), empty_i64(vec![0])];
    check_conformance("segmap/zero-width", &fl, &args);

    // segred with zero segments (n = 0) and with a zero-width inner
    // dimension (m = 0: every row sum is the neutral element).
    let src = "def main [n][m] (xss: [n][m]i64) =\n  map (\\r -> reduce (+) 0 r) xss\n";
    let prog = lang::compile(src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![Value::i64_(0), Value::i64_(3), empty_i64(vec![0, 3])];
    check_conformance("segred/zero-segments", &fl, &args);
    let args = vec![Value::i64_(3), Value::i64_(0), empty_i64(vec![3, 0])];
    check_conformance("segred/zero-inner-width", &fl, &args);

    // segscan with a zero-width inner dimension (total = 0).
    let src = "def main [n][m] (xss: [n][m]i64) =\n  map (\\r -> scan (+) 0 r) xss\n";
    let prog = lang::compile(src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![Value::i64_(3), Value::i64_(0), empty_i64(vec![3, 0])];
    check_conformance("segscan/zero-inner-width", &fl, &args);
    let args = vec![Value::i64_(0), Value::i64_(2), empty_i64(vec![0, 2])];
    check_conformance("segscan/zero-segments", &fl, &args);
}

/// An out-of-bounds index is a structured `ExecError` on both backends
/// — identical message, no panic (it used to assert inside
/// `index_outer_many`).
#[test]
fn out_of_bounds_index_is_a_structured_error_on_both_backends() {
    let src = "def main [n] (xs: [n]i64) (c: i64) =\n  xs[c]\n";
    let prog = lang::compile(src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![Value::i64_(3), Value::i64_vec(vec![10, 20, 30]), Value::i64_(7)];

    let e = exec::run_program(&fl.prog, &args, &cfg(2, SMALL_GRAIN))
        .expect_err("exec must reject the out-of-bounds index");
    let v = vm::run_program(&fl.prog, &args, &cfg(2, SMALL_GRAIN))
        .expect_err("vm must reject the out-of-bounds index");
    for (backend, err) in [("exec", &e), ("vm", &v)] {
        assert!(
            err.0.contains("out of bounds"),
            "{backend}: unstructured error: {}",
            err.0
        );
    }
    assert_eq!(e.0, v.0, "both backends should agree on the error text");

    // In-bounds still works, bitwise across backends.
    let args = vec![Value::i64_(3), Value::i64_vec(vec![10, 20, 30]), Value::i64_(1)];
    check_conformance("index/in-bounds", &fl, &args);

    // Negative index is the same structured failure.
    let args = vec![Value::i64_(3), Value::i64_vec(vec![10, 20, 30]), Value::i64_(-1)];
    assert!(exec::run_program(&fl.prog, &args, &cfg(2, SMALL_GRAIN))
        .expect_err("negative index")
        .0
        .contains("out of bounds"));
    assert!(vm::run_program(&fl.prog, &args, &cfg(2, SMALL_GRAIN))
        .expect_err("negative index")
        .0
        .contains("out of bounds"));
}

/// Bytecode goldens: the lowering of a one-level `map` (a `segmap` with
/// a monomorphic i64 body) and a `reduce` (a `segred` with fold and
/// combine functions over accumulator registers) is pinned exactly —
/// register assignment, opcode selection, and segop structure.
/// Deliberately printed without variable names (register indices only),
/// so the text is stable under the process-global name counter.
#[test]
fn disassembly_goldens() {
    let map_src = "def main [n] (xs: [n]i64) (c: i64) =\n  map (\\x -> x * c + 1) xs\n";
    let prog = lang::compile(map_src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let compiled = vm::compile(&fl.prog).unwrap();
    let golden = "\
vm program: funcs=2 segs=1 soacs=0 regs int=6 flt=0 arr=2
params: i0:i64^0, a0^1, i1:i64^0
results: [a1]
fn0: (entry)
  seg          g0
fn1:
  mul.i64      i3 <- i2, i1
  iconst       i5 <- 1
  add.i64      i4 <- i3, i5
g0: segmap level=1
  dim 0: width=i0 binds=[i2:i64 <- a0[.]]
  body=fn1 outs=[i4:i64]
  dsts=[a1]
";
    assert_eq!(vm::disasm(&compiled), golden, "segmap lowering drifted");

    let red_src = "def main [n] (xs: [n]i64) =\n  reduce (+) 0 xs\n";
    let prog = lang::compile(red_src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let compiled = vm::compile(&fl.prog).unwrap();
    let golden = "\
vm program: funcs=3 segs=1 soacs=0 regs int=10 flt=0 arr=1
params: i0:i64^0, a0^1
results: [i9:i64]
fn0: (entry)
  iconst       i4 <- 0
  seg          g0
fn1:
  mov          i3 <- i1
  add.i64      i5 <- i2, i3
  mov          i6 <- i5
  mov          i2 <- i6
fn2:
  add.i64      i7 <- i2, i3
  mov          i8 <- i7
  mov          i2 <- i8
g0: segred level=1
  dim 0: width=i0 binds=[i1:i64 <- a0[.]]
  fold=fn1 combine=fn2 nes=[i4:i64] accs=[i2:i64] rhs=[i3:i64]
  dsts=[i9:i64]
";
    assert_eq!(vm::disasm(&compiled), golden, "segred lowering drifted");
}
