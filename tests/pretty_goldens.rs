//! Golden tests for the pretty-printer: the printed form of flattened
//! LocVolCalib-style code must read like the paper's Fig. 6c notation.

use incremental_flattening::prelude::*;
use ir::pretty;

#[test]
fn matmul_incremental_prints_paper_notation() {
    let src = "
def matmul [n][m][p] (xss: [n][m]f32) (yss: [m][p]f32): [n][p]f32 =
  map (\\xs -> map (\\ys -> redomap (+) (*) 0f32 xs ys) (transpose yss)) xss
";
    let prog = lang::compile(src, "matmul").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let out = pretty::program(&fl.prog);

    // The multi-versioned structure is recognizable in the output:
    for needle in [
        "segmap^1",     // manifested map nests
        "segred^1",     // the fully flattened version
        ">= t0",        // threshold guards by name
        "if ",          // guarded version selection
        "∈",            // map-nest context bindings ⟨x ∈ xs⟩
        "rearrange",    // the hoisted transpose
        "[tile 16]",    // block tiling on the sequentialized version
    ] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }
}

#[test]
fn source_program_round_trip_readability() {
    let src = "
def f [n] (xs: [n]f32): f32 =
  let ys = scan (+) 0f32 xs
  in reduce max 0f32 ys
";
    let prog = lang::compile(src, "f").unwrap();
    let out = pretty::program(&prog);
    assert!(out.contains("def f"));
    assert!(out.contains("scan"));
    assert!(out.contains("reduce"));
    assert!(out.contains("max"));
    // Result tuple syntax.
    assert!(out.trim_end().ends_with(')'));
}

#[test]
fn loops_and_ifs_print_structurally() {
    let src = "
def g (k: i64): i64 =
  let r = loop (acc = 0) for i < k do acc + i
  in if r < 10 then r else 10
";
    let prog = lang::compile(src, "g").unwrap();
    let out = pretty::program(&prog);
    assert!(out.contains("loop ("));
    assert!(out.contains("for "));
    assert!(out.contains("if "));
    assert!(out.contains("else"));
}

#[test]
fn body_and_exp_strings_are_usable_standalone() {
    let src = "def h [n] (xs: [n]i64): [n]i64 = map (\\x -> x + 1) xs";
    let prog = lang::compile(src, "h").unwrap();
    let b = pretty::body_string(&prog.body);
    assert!(b.contains("map"));
    let e = pretty::exp_string(&prog.body.stms[0].exp);
    assert!(e.starts_with("map"));
}
