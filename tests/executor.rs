//! Acceptance tests for the `flat-exec` runtime: determinism across
//! thread counts, agreement with the reference interpreter, and
//! tree-consistency of live threshold dispatch.
//!
//! The executor's kernel decomposition depends only on the grain size —
//! never on the thread count — so every program must produce
//! *bit-identical* results under 1, 4 and 8 threads, at the default
//! grain and at a tiny grain that forces multi-block decompositions.
//! Integer programs must further match the reference interpreter
//! exactly; float programs match bitwise at the default (single-block)
//! grain and approximately under multi-block reduction, where the
//! combine order differs from the interpreter's strictly sequential
//! fold.

use incremental_flattening::prelude::*;

use exec::{ExecConfig, ExecReport};
use flat_ir::interp::Thresholds;
use ir::value::{Buffer, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const SMALL_GRAIN: usize = 4;

fn cfg(threads: usize, grain: usize) -> ExecConfig {
    ExecConfig {
        thresholds: Thresholds::new(),
        threads: Some(threads),
        grain,
        ..ExecConfig::default()
    }
}

fn buffers_approx(a: &Buffer, b: &Buffer) -> bool {
    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0)
    }
    match (a, b) {
        (Buffer::F32(x), Buffer::F32(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(u, v)| close(*u as f64, *v as f64))
        }
        (Buffer::F64(x), Buffer::F64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| close(*u, *v))
        }
        _ => a == b,
    }
}

fn values_approx(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::Array(u), Value::Array(v)) => {
                u.shape == v.shape && buffers_approx(&u.data, &v.data)
            }
            (Value::Scalar(ir::Const::F32(u)), Value::Scalar(ir::Const::F32(v))) => {
                buffers_approx(&Buffer::F32(vec![*u]), &Buffer::F32(vec![*v]))
            }
            (Value::Scalar(ir::Const::F64(u)), Value::Scalar(ir::Const::F64(v))) => {
                buffers_approx(&Buffer::F64(vec![*u]), &Buffer::F64(vec![*v]))
            }
            _ => x == y,
        })
}

fn has_floats(vals: &[Value]) -> bool {
    vals.iter().any(|v| match v {
        Value::Scalar(c) => matches!(c, ir::Const::F32(_) | ir::Const::F64(_)),
        Value::Array(a) => matches!(a.data, Buffer::F32(_) | Buffer::F64(_)),
    })
}

/// The full determinism contract for one flattened program on one
/// argument list. Returns the default-grain reports for further checks.
fn check_program(name: &str, fl: &compiler::Flattened, args: &[Value]) -> Vec<ExecReport> {
    let reference = ir::interp::run_program(&fl.prog, args, &Thresholds::new())
        .unwrap_or_else(|e| panic!("{name}: interpreter failed: {e}"));
    let exact = !has_floats(&reference);

    for grain in [exec::DEFAULT_GRAIN, SMALL_GRAIN] {
        let reports: Vec<ExecReport> = THREAD_COUNTS
            .iter()
            .map(|&n| {
                exec::run_program(&fl.prog, args, &cfg(n, grain))
                    .unwrap_or_else(|e| panic!("{name}: exec ({n} threads, grain {grain}): {e}"))
            })
            .collect();

        // Bit-identical across thread counts, including the taken path.
        for (i, rep) in reports.iter().enumerate() {
            assert_eq!(
                rep.values, reports[0].values,
                "{name}: grain {grain}: {} threads diverges from 1 thread",
                THREAD_COUNTS[i]
            );
            assert_eq!(
                rep.signature(),
                reports[0].signature(),
                "{name}: grain {grain}: dispatch path depends on thread count"
            );
            // The live path must be one the branching tree can reach.
            assert!(
                exec::path_in_tree(&fl.thresholds, &rep.signature()),
                "{name}: live path {:?} not in the threshold tree",
                rep.signature()
            );
        }

        // Agreement with the reference interpreter: exact for integer
        // programs at any grain, and for float programs at the default
        // grain on these small inputs (single-block reductions); the
        // multi-block float combine order is only approximately equal.
        let got = &reports[0].values;
        if exact {
            assert_eq!(got, &reference, "{name}: grain {grain}: exec != interpreter");
        } else if grain == exec::DEFAULT_GRAIN {
            assert_eq!(
                got, &reference,
                "{name}: single-block float run should be bitwise equal"
            );
        } else {
            assert!(
                values_approx(got, &reference),
                "{name}: grain {grain}: exec not even approximately equal to interpreter"
            );
        }

        if grain == exec::DEFAULT_GRAIN {
            return reports;
        }
    }
    unreachable!()
}

fn f32_matrix(rows: i64, cols: i64, seed: u64) -> Value {
    exec::materialize(&[gpu::AbsValue::array(vec![rows, cols], ir::ScalarType::F32)], seed)
        .unwrap()
        .pop()
        .unwrap()
}

#[test]
fn examples_are_deterministic_across_thread_counts() {
    let matmul = std::fs::read_to_string("examples/matmul.fut").unwrap();
    let prog = lang::compile(&matmul, "matmul").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![
        Value::i64_(6),
        Value::i64_(10),
        Value::i64_(7),
        f32_matrix(6, 10, 1),
        f32_matrix(10, 7, 2),
    ];
    check_program("examples/matmul.fut", &fl, &args);

    let sumrows = std::fs::read_to_string("examples/sumrows.fut").unwrap();
    let prog = lang::compile(&sumrows, "sumrows").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = vec![Value::i64_(5), Value::i64_(9), f32_matrix(5, 9, 3)];
    check_program("examples/sumrows.fut", &fl, &args);
}

#[test]
fn benchmark_suite_is_deterministic_across_thread_counts() {
    let cfg = compiler::FlattenConfig::incremental();
    for b in bench_suite::all_benchmarks() {
        let fl = b.flatten(&cfg);
        let mut rng = StdRng::seed_from_u64(0xDE7E);
        let args = (b.test_args)(&mut rng);
        check_program(b.name, &fl, &args);
    }
}

#[test]
fn corpus_is_deterministic_and_matches_interpreter_exactly() {
    let cases = fuzz::corpus::load_dir(std::path::Path::new("tests/corpus")).unwrap();
    assert!(!cases.is_empty(), "corpus directory should not be empty");
    for case in cases {
        let inputs = fuzz::oracle::FuzzInputs::from_seed(case.n, case.m, case.data_seed);
        let prog = lang::compile(&case.source, "main")
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let fl = compiler::flatten_incremental(&prog).unwrap();
        let reports = check_program(&case.name, &fl, &inputs.ir_args());
        // Corpus programs are all-integer: the interpreter agreement in
        // check_program was exact, so just sanity-check that something
        // actually ran in parallel kernels.
        assert_eq!(reports.len(), THREAD_COUNTS.len());
    }
}

/// The live-dispatched path is not just *consistent* with the tree
/// (`path_in_tree`) — it is literally one of the paths the oracle's
/// `enumerate_assignments` walk over `ThresholdRegistry::children_of`
/// produces when forced.
#[test]
fn live_dispatch_takes_an_enumerated_path() {
    let src = "\
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\\r -> redomap (+) (\\x -> x * c) 0 r) xss
";
    let inputs = fuzz::oracle::FuzzInputs::from_seed(5, 6, 99);
    let prog = lang::compile(src, "main").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let args = inputs.ir_args();

    let live = exec::run_program(&fl.prog, &args, &cfg(4, SMALL_GRAIN)).unwrap();
    let live_sig = live.signature();

    let mut forced_sigs = Vec::new();
    for asg in fuzz::oracle::enumerate_assignments(&fl.thresholds, 32) {
        let mut t = Thresholds::new();
        for (id, taken) in &asg {
            t.set(*id, if *taken { 0 } else { i64::MAX });
        }
        let rep = exec::run_program(
            &fl.prog,
            &args,
            &ExecConfig {
                thresholds: t,
                threads: Some(2),
                grain: SMALL_GRAIN,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(rep.values, live.values, "forced path changed the result");
        forced_sigs.push(rep.signature());
    }
    assert!(
        forced_sigs.contains(&live_sig),
        "live path {live_sig:?} not among the enumerated paths {forced_sigs:?}"
    );
}
