//! Acceptance tests for executor telemetry (`exec-obs`): scheduler
//! counter invariants, worker-trace well-formedness, the sample-log
//! round trip through the autotune loader, and the guarantee that
//! telemetry never perturbs results.
//!
//! The counters are designed so that every task acquisition is counted
//! exactly once — own-deque pops and inline jobs as local pops, stolen
//! tasks as steals — which yields the cross-slot invariant
//! `local_pops + steals == tasks` at every thread count. Busy time is
//! accounted non-reentrantly per thread (nested counted frames are
//! covered by their encloser), so each slot's busy time is an
//! interval-disjoint subset of the run's wall time.
//!
//! Pools are cached per size and shared across a process, so tests
//! that assert on per-run telemetry deltas serialize on a lock.

use incremental_flattening::prelude::*;

use exec::ExecConfig;
use ir::value::Value;
use std::sync::Mutex;

/// Serializes telemetered runs: concurrent tests sharing a cached pool
/// would otherwise interleave their counter deltas.
static POOL_LOCK: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

const SUMROWS: &str = "
def sumrows [n][m] (xss: [n][m]f32): [n]f32 =
  map (\\xs -> reduce (+) 0f32 xs) xss
";

fn sumrows_args() -> Vec<Value> {
    let specs = vec![
        gpu::AbsValue::known(ir::Const::I64(64)),
        gpu::AbsValue::known(ir::Const::I64(32)),
        gpu::AbsValue::array(vec![64, 32], ir::ScalarType::F32),
    ];
    exec::materialize(&specs, 7).unwrap()
}

fn flatten(src: &str, entry: &str) -> compiler::Flattened {
    let prog = lang::compile(src, entry).unwrap();
    compiler::flatten_incremental(&prog).unwrap()
}

fn cfg(threads: usize) -> ExecConfig {
    ExecConfig {
        threads: Some(threads),
        grain: 4,
        telemetry: true,
        ..ExecConfig::default()
    }
}

#[test]
fn counters_reconcile_at_every_thread_count() {
    let _guard = POOL_LOCK.lock().unwrap();
    let fl = flatten(SUMROWS, "sumrows");
    let args = sumrows_args();
    for threads in THREAD_COUNTS {
        let rep = exec::run_program(&fl.prog, &args, &cfg(threads)).unwrap();
        let pool = rep.pool.as_ref().expect("telemetry on records pool counters");
        let slots = pool.workers.len();
        assert_eq!(slots, threads, "{threads} threads: workers + caller slot");

        let total = pool.total();
        assert!(total.tasks > 0, "{threads} threads: kernels dispatched tasks");
        assert_eq!(
            total.local_pops + total.steals,
            total.tasks,
            "{threads} threads: every task acquired exactly once"
        );
        // Busy intervals are per-slot disjoint and inside the run
        // window; small epsilon for the Instant-vs-pool-clock skew.
        let bound = rep.wall_nanos * slots as f64 * 1.05 + 1e6;
        assert!(
            (total.busy_ns as f64) <= bound,
            "{threads} threads: busy {} ns exceeds wall {} ns x {slots} slots",
            total.busy_ns,
            rep.wall_nanos
        );
        for (slot, w) in pool.workers.iter().enumerate() {
            assert!(
                (w.busy_ns as f64) <= rep.wall_nanos * 1.05 + 1e6,
                "{threads} threads: slot {slot} busy beyond wall"
            );
        }
    }
}

#[test]
fn per_kernel_telemetry_mirrors_the_run_totals() {
    let _guard = POOL_LOCK.lock().unwrap();
    let fl = flatten(SUMROWS, "sumrows");
    let args = sumrows_args();
    let rep = exec::run_program(&fl.prog, &args, &cfg(4)).unwrap();
    let run_total = rep.pool.as_ref().unwrap().total();

    assert!(!rep.launches.is_empty());
    let mut kernel_tasks = 0;
    for l in &rep.launches {
        let telem = l.telem.as_ref().expect("telemetry on records per-kernel deltas");
        let t = telem.pool.total();
        assert_eq!(t.local_pops + t.steals, t.tasks, "kernel {}", l.name);
        assert!(t.tasks > 0, "kernel {} dispatched tasks", l.name);
        kernel_tasks += t.tasks;
        // The task-size histogram mirrors the decomposition: one entry
        // per dispatched chunk, none larger than the grain.
        assert!(telem.task_sizes.count > 0, "kernel {}", l.name);
        assert!(telem.task_sizes.max <= rep.grain as u64, "kernel {}", l.name);
    }
    // Every counted task happened inside some kernel dispatch.
    assert_eq!(kernel_tasks, run_total.tasks);
}

#[test]
fn worker_trace_is_well_formed_chrome_json() {
    let _guard = POOL_LOCK.lock().unwrap();
    let fl = flatten(SUMROWS, "sumrows");
    let args = sumrows_args();
    let threads = 4;
    let mut c = cfg(threads);
    c.worker_trace = true;
    let rep = exec::run_program(&fl.prog, &args, &c).unwrap();

    // Raw spans: non-empty, every one joins a launch by tag and names a
    // real slot.
    assert!(!rep.spans.is_empty());
    let slots = rep.pool.as_ref().unwrap().workers.len();
    for s in &rep.spans {
        assert!(s.worker < slots, "span on unknown slot {}", s.worker);
        assert!(
            rep.launches.iter().any(|l| l.tag == s.tag),
            "span tag {} joins no kernel launch",
            s.tag
        );
    }

    // The rendered trace round-trips through the JSON parser.
    let events = exec::worker_trace_events(&rep);
    let doc: obs::json::Value = obs::json::from_str(&obs::chrome::trace_string(&events)).unwrap();
    let evs = doc
        .get("traceEvents")
        .and_then(obs::json::Value::as_array)
        .expect("chrome trace document has a traceEvents array");

    // One thread_name metadata event per track: the kernel track (tid
    // 0) plus one per slot (tids 1..=slots).
    let mut named_tids: Vec<i64> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("M"))
        .map(|e| e.get("tid").and_then(obs::json::Value::as_f64).unwrap() as i64)
        .collect();
    named_tids.sort_unstable();
    let expected: Vec<i64> = (0..=slots as i64).collect();
    assert_eq!(named_tids, expected, "one named track per worker plus the kernel track");

    // Complete events: kernel spans on tid 0 (one per launch), task
    // spans on worker tracks (one per recorded span), all tids named.
    let xs: Vec<_> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("X"))
        .collect();
    let kernel_spans = xs
        .iter()
        .filter(|e| e.get("tid").and_then(obs::json::Value::as_f64) == Some(0.0))
        .count();
    assert_eq!(kernel_spans, rep.launches.len());
    assert_eq!(xs.len(), rep.launches.len() + rep.spans.len());
    for e in &xs {
        let tid = e.get("tid").and_then(obs::json::Value::as_f64).unwrap() as i64;
        assert!(expected.contains(&tid), "X event on unnamed tid {tid}");
        assert!(e.get("dur").and_then(obs::json::Value::as_f64).unwrap() >= 0.0);
    }
}

#[test]
fn telemetry_does_not_perturb_results() {
    let _guard = POOL_LOCK.lock().unwrap();
    let fl = flatten(SUMROWS, "sumrows");
    let args = sumrows_args();
    let baseline = {
        let mut c = cfg(1);
        c.telemetry = false;
        exec::run_program(&fl.prog, &args, &c).unwrap()
    };
    for threads in THREAD_COUNTS {
        for (telemetry, worker_trace) in [(false, false), (true, false), (true, true)] {
            let c = ExecConfig {
                threads: Some(threads),
                grain: 4,
                telemetry,
                worker_trace,
                ..ExecConfig::default()
            };
            let rep = exec::run_program(&fl.prog, &args, &c).unwrap();
            assert_eq!(
                rep.values, baseline.values,
                "telemetry={telemetry} worker_trace={worker_trace} threads={threads} \
                 changed the results"
            );
            assert_eq!(rep.signature(), baseline.signature());
        }
    }
}

#[test]
fn sample_log_round_trips_through_the_autotune_loader() {
    let _guard = POOL_LOCK.lock().unwrap();
    let fl = flatten(SUMROWS, "sumrows");
    let args = sumrows_args();
    let rep = exec::run_program(&fl.prog, &args, &cfg(4)).unwrap();
    assert!(!rep.launches.is_empty());

    let path = std::env::temp_dir().join(format!("exec-obs-samples-{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();
    // Two appended runs: the loader must see both.
    exec::append_sample_log(&path, &rep, "sumrows").unwrap();
    exec::append_sample_log(&path, &rep, "sumrows").unwrap();
    let samples = tuning::load_sample_log(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(samples.len(), 2 * rep.launches.len());

    let join = tuning::join_samples(&fl.thresholds, &samples);
    assert_eq!(join.samples, samples.len());

    // Every executed kernel's path signature joined at least one
    // sample, and live-dispatched paths are tree-consistent.
    for l in &rep.launches {
        let mut sig = l.path.clone();
        sig.sort_unstable();
        sig.dedup();
        let stats = join
            .stats_for(&sig)
            .unwrap_or_else(|| panic!("no samples joined to signature {sig:?}"));
        assert!(stats.in_tree, "live path {sig:?} is not in the branching tree");
        assert!(stats.count >= 2);
        assert!(stats.median_wall_ns > 0.0);
        let class = exec::shape_class(&l.widths);
        assert!(
            stats.shape_classes.contains_key(&class),
            "signature {sig:?} missing shape class {class}"
        );
    }
    assert!(!join.warm_start().is_empty());
}
