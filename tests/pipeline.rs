//! Workspace-level integration tests: the full pipeline (surface language
//! → fusion → flattening → simulation/interpretation → tuning) across
//! every benchmark of the suite.

use incremental_flattening::prelude::*;
use ir::interp::{run_program, Thresholds};
use tuning::{exhaustive_tune, TuningProblem};

/// Every benchmark: the flattened program computes the same values as
/// the source, under every extreme of the threshold space.
#[test]
fn all_benchmarks_semantics_roundtrip() {
    for bench in bench_suite::all_benchmarks() {
        let prog = bench.compile();
        ir::typecheck::check_source(&prog).unwrap();
        let mut rng = bench_suite::Benchmark::rng();
        let vals = (bench.test_args)(&mut rng);
        let reference = run_program(&prog, &vals, &Thresholds::new())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        for cfg in [
            compiler::FlattenConfig::moderate(),
            compiler::FlattenConfig::incremental(),
            compiler::FlattenConfig::full(),
        ] {
            let fl = bench.flatten(&cfg);
            ir::typecheck::check_target(&fl.prog).unwrap();
            for setting in [0, Thresholds::DEFAULT, i64::MAX] {
                let t = Thresholds::uniform(fl.thresholds.ids(), setting);
                let got = run_program(&fl.prog, &vals, &t)
                    .unwrap_or_else(|e| panic!("{} (t={setting}): {e}", bench.name));
                assert_eq!(reference.len(), got.len(), "{}", bench.name);
                for (r, g) in reference.iter().zip(&got) {
                    assert!(
                        r.approx_eq(g, 1e-3),
                        "{} at t={setting}: {r} vs {g}",
                        bench.name
                    );
                }
            }
        }
    }
}

/// Every benchmark simulates on both devices at default thresholds, on
/// every paper dataset, without errors, and produces positive runtimes.
#[test]
fn all_benchmarks_simulate_on_paper_datasets() {
    let t = Thresholds::new();
    for bench in bench_suite::all_benchmarks() {
        for cfg in [compiler::FlattenConfig::moderate(), compiler::FlattenConfig::incremental()] {
            let fl = bench.flatten(&cfg);
            for dev in [gpu::DeviceSpec::k40(), gpu::DeviceSpec::vega64()] {
                for d in &bench.datasets {
                    let rep = gpu::simulate(&fl.prog, &d.args, &t, &dev)
                        .unwrap_or_else(|e| panic!("{} {} {}: {e}", bench.name, d.name, dev.name));
                    assert!(rep.cost.total_cycles > 0.0);
                    assert!(rep.microseconds > 0.0);
                }
            }
        }
    }
}

/// Autotuned IF is never worse than untuned IF on the tuning datasets
/// (by construction), and never worse than both MF and untuned IF in
/// aggregate on the paper datasets.
#[test]
fn tuning_improves_or_preserves_aggregate_cost() {
    let default = Thresholds::new();
    for bench in bench_suite::all_benchmarks() {
        let mf = bench.flatten(&compiler::FlattenConfig::moderate());
        let incr = bench.flatten(&compiler::FlattenConfig::incremental());
        for dev in [gpu::DeviceSpec::k40(), gpu::DeviceSpec::vega64()] {
            let problem =
                TuningProblem::new(&incr, bench.tuning_datasets.clone(), dev.clone());
            let tuned = exhaustive_tune(&problem, 1 << 20).unwrap().thresholds;

            let total = |fl: &compiler::Flattened, t: &Thresholds| -> f64 {
                bench
                    .datasets
                    .iter()
                    .map(|d| bench.cost(fl, &dev, d, t).unwrap())
                    .sum()
            };
            let mf_total = total(&mf, &default);
            let if_total = total(&incr, &default);
            let aif_total = total(&incr, &tuned);
            assert!(
                aif_total <= if_total * 1.001,
                "{} on {}: tuned {} worse than untuned {}",
                bench.name,
                dev.name,
                aif_total,
                if_total
            );
            assert!(
                aif_total <= mf_total * 1.05,
                "{} on {}: tuned {} worse than MF {}",
                bench.name,
                dev.name,
                aif_total,
                mf_total
            );
        }
    }
}

/// The §5.1 code-size claim holds in aggregate: incremental flattening
/// produces larger programs than moderate flattening, within a modest
/// constant factor (the paper reports ~3-4×).
#[test]
fn code_growth_is_bounded() {
    let mut total_mf = 0usize;
    let mut total_if = 0usize;
    for bench in bench_suite::all_benchmarks() {
        let mf = bench.flatten(&compiler::FlattenConfig::moderate());
        let incr = bench.flatten(&compiler::FlattenConfig::incremental());
        total_mf += mf.stats.target_stms;
        total_if += incr.stats.target_stms;
        assert!(
            incr.stats.target_stms <= mf.stats.target_stms * 12,
            "{}: runaway code growth ({} vs {})",
            bench.name,
            incr.stats.target_stms,
            mf.stats.target_stms
        );
    }
    let ratio = total_if as f64 / total_mf as f64;
    assert!(
        (1.0..=8.0).contains(&ratio),
        "aggregate code growth {ratio} outside the plausible band"
    );
}

/// Thresholds are the *only* dynamic knobs: at a fixed assignment the
/// simulator is deterministic.
#[test]
fn simulation_is_deterministic() {
    let bench = bench_suite::matmul::benchmark();
    let fl = bench.flatten(&compiler::FlattenConfig::incremental());
    let dev = gpu::DeviceSpec::k40();
    let d = &bench.datasets[3];
    let t = Thresholds::new();
    let a = gpu::simulate(&fl.prog, &d.args, &t, &dev).unwrap();
    let b = gpu::simulate(&fl.prog, &d.args, &t, &dev).unwrap();
    assert_eq!(a.cost.total_cycles, b.cost.total_cycles);
    assert_eq!(a.path, b.path);
}

/// The moderate-flattened program behaves like the incremental one with
/// a fixed "all guards false" policy on programs where MF's heuristic
/// flattens everything (the batch scans case): cost parity check.
#[test]
fn moderate_matches_a_version_of_incremental() {
    let src = "
def rowscans [n][m] (xss: [n][m]f32): [n][m]f32 =
  map (\\xs -> scan (+) 0f32 xs) xss
";
    let prog = lang::compile(src, "rowscans").unwrap();
    let mf = compiler::flatten_moderate(&prog).unwrap();
    let incr = compiler::flatten_incremental(&prog).unwrap();
    let dev = gpu::DeviceSpec::k40();
    let args = vec![
        gpu::AbsValue::known(ir::Const::I64(512)),
        gpu::AbsValue::known(ir::Const::I64(256)),
        gpu::AbsValue::array(vec![512, 256], ir::ScalarType::F32),
    ];
    let mf_c = gpu::simulate(&mf.prog, &args, &Thresholds::new(), &dev).unwrap();
    let flat = Thresholds::uniform(incr.thresholds.ids(), i64::MAX);
    let if_c = gpu::simulate(&incr.prog, &args, &flat, &dev).unwrap();
    let rel = (mf_c.cost.total_cycles - if_c.cost.total_cycles).abs()
        / mf_c.cost.total_cycles;
    assert!(
        rel < 0.05,
        "MF {} vs IF-all-false {} differ by {rel}",
        mf_c.cost.total_cycles,
        if_c.cost.total_cycles
    );
}

/// The interpreter and the simulator agree on which code version runs
/// (identical threshold-comparison outcomes).
#[test]
fn interpreter_and_simulator_take_the_same_path() {
    let bench = bench_suite::matmul::benchmark();
    let fl = bench.flatten(&compiler::FlattenConfig::incremental());
    let mut rng = bench_suite::Benchmark::rng();
    let vals = (bench.test_args)(&mut rng);
    for setting in [1, 4, 64, Thresholds::DEFAULT] {
        let t = Thresholds::uniform(fl.thresholds.ids(), setting);
        let mut interp = ir::interp::Interp::new(&t);
        interp.bind_args(&fl.prog, &vals).unwrap();
        interp.eval_body(&fl.prog.body).unwrap();
        let sim = gpu::simulate_values(&fl.prog, &vals, &t, &gpu::DeviceSpec::k40()).unwrap();
        let interp_sig: Vec<(u32, bool)> = {
            let mut v: Vec<(u32, bool)> =
                interp.path.iter().map(|(id, b)| (id.0, *b)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let sim_sig: Vec<(u32, bool)> = {
            let mut v: Vec<(u32, bool)> =
                sim.path.iter().map(|c| (c.id.0, c.taken)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(interp_sig, sim_sig, "divergent paths at t={setting}");
    }
}
