//! Property-based tests: randomly generated well-typed nested-parallel
//! programs must survive the whole pipeline with semantics preserved
//! *exactly* (all arithmetic is wrapping `i64`, which is associative, so
//! flattening's reassociation of reductions cannot change results).

use incremental_flattening::prelude::*;
use ir::ast::{BinOp, Exp, Soac, SubExp};
use ir::builder::{binop_lambda, BodyBuilder, LambdaBuilder, ProgramBuilder};
use ir::interp::{run_program, Thresholds};
use ir::types::{Param, ScalarType, Type};
use ir::value::{ArrayVal, Buffer};
use ir::{Value, VName};
use proptest::prelude::*;

/// An associative operator with its neutral element.
#[derive(Clone, Copy, Debug)]
enum GOp {
    Add,
    Mul,
    Min,
    Max,
}

impl GOp {
    fn binop(self) -> BinOp {
        match self {
            GOp::Add => BinOp::Add,
            GOp::Mul => BinOp::Mul,
            GOp::Min => BinOp::Min,
            GOp::Max => BinOp::Max,
        }
    }

    fn neutral(self) -> i64 {
        match self {
            GOp::Add => 0,
            GOp::Mul => 1,
            GOp::Min => i64::MAX,
            GOp::Max => i64::MIN,
        }
    }
}

/// One scalar transformation step: `x op c`.
#[derive(Clone, Copy, Debug)]
struct GScalar(GOp, i64);

/// A generated transformation of a value of some array rank. Constructors
/// note their rank behaviour.
#[derive(Clone, Debug)]
enum G {
    /// rank 0 → rank 0: a chain of scalar ops.
    Chain(Vec<GScalar>),
    /// rank r+1 → rank r+1 (shape-preserving): map the inner transform
    /// over the outer dimension.
    Map(Box<G>),
    /// rank 1 → rank 1: an inclusive scan.
    Scan(GOp),
    /// rank 1 → rank 0: a redomap with a scalar pre-map.
    Redomap(GOp, Vec<GScalar>),
    /// rank 1 → rank 0: a plain reduction.
    Reduce(GOp),
    /// rank r → rank r (requires the inner transform shape-preserving):
    /// iterate a few times.
    Loop(u8, Box<G>),
    /// Sequential composition (first must be shape-preserving).
    Seq(Box<G>, Box<G>),
    /// rank r → rank r: an `if` on a context-invariant condition (the
    /// outer size compared to a constant) — exercises rule G8. Both
    /// branches must be shape-preserving.
    IfWide(Box<G>, Box<G>),
}

impl G {
    /// Rank change: output rank given input rank.
    fn out_rank(&self, r: usize) -> usize {
        match self {
            G::Chain(_) => r,
            G::Map(inner) => 1 + inner.out_rank(r - 1),
            G::Scan(_) => r,
            G::Redomap(..) | G::Reduce(_) => r - 1,
            G::Loop(_, inner) => inner.out_rank(r),
            G::Seq(a, b) => b.out_rank(a.out_rank(r)),
            G::IfWide(a, _) => a.out_rank(r),
        }
    }
}

/// Strategy for a shape-preserving transform at the given rank.
fn preserving(rank: usize) -> BoxedStrategy<G> {
    if rank == 0 {
        chain().prop_map(G::Chain).boxed()
    } else {
        let base = prop_oneof![
            preserving(rank - 1).prop_map(|g| G::Map(Box::new(g))),
            if rank == 1 {
                gop().prop_map(G::Scan).boxed()
            } else {
                preserving(rank - 1).prop_map(|g| G::Map(Box::new(g))).boxed()
            },
        ];
        base.prop_recursive(2, 6, 2, move |inner| {
            prop_oneof![
                (1u8..3, inner.clone()).prop_map(|(k, g)| G::Loop(k, Box::new(g))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| G::Seq(Box::new(a), Box::new(b))),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| G::IfWide(Box::new(a), Box::new(b))),
            ]
        })
        .boxed()
    }
}

/// Strategy for any transform at the given rank (may reduce rank).
fn any_g(rank: usize) -> BoxedStrategy<G> {
    if rank == 0 {
        return chain().prop_map(G::Chain).boxed();
    }
    let reducing = if rank == 1 {
        prop_oneof![
            (gop(), chain()).prop_map(|(o, c)| G::Redomap(o, c)),
            gop().prop_map(G::Reduce),
        ]
        .boxed()
    } else {
        any_g(rank - 1).prop_map(|g| G::Map(Box::new(g))).boxed()
    };
    prop_oneof![
        preserving(rank),
        reducing,
        (preserving(rank), any_g_shallow(rank))
            .prop_map(|(a, b)| G::Seq(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

/// Non-recursive variant to bound generation depth.
fn any_g_shallow(rank: usize) -> BoxedStrategy<G> {
    if rank == 1 {
        prop_oneof![
            chain().prop_map(|c| G::Map(Box::new(G::Chain(c)))),
            gop().prop_map(G::Scan),
            gop().prop_map(G::Reduce),
            (gop(), chain()).prop_map(|(o, c)| G::Redomap(o, c)),
        ]
        .boxed()
    } else {
        any_g_shallow(rank - 1).prop_map(|g| G::Map(Box::new(g))).boxed()
    }
}

fn gop() -> impl Strategy<Value = GOp> {
    prop_oneof![
        Just(GOp::Add),
        Just(GOp::Mul),
        Just(GOp::Min),
        Just(GOp::Max)
    ]
}

fn chain() -> impl Strategy<Value = Vec<GScalar>> {
    prop::collection::vec((gop(), -7i64..7).prop_map(|(o, c)| GScalar(o, c)), 1..4)
}

/// Build IR computing `g` applied to `input` (an atom of type `ty`),
/// emitting statements into `bb`; returns the result atom and type.
fn build(g: &G, input: SubExp, ty: &Type, bb: &mut BodyBuilder) -> (SubExp, Type) {
    match g {
        G::Chain(steps) => {
            let mut cur = input;
            for GScalar(op, c) in steps {
                cur = SubExp::Var(bb.binop(op.binop(), cur, SubExp::i64(*c), Type::i64()));
            }
            (cur, Type::i64())
        }
        G::Map(inner) => {
            let arr = input.as_var().expect("map over variable");
            let elem_ty = ty.elem();
            let mut lb = LambdaBuilder::new();
            let x = lb.param("x", elem_ty.clone());
            let (res, res_ty) = build(inner, SubExp::Var(x), &elem_ty, &mut lb.body);
            let lam = lb.finish(vec![res], vec![res_ty.clone()]);
            let w = ty.dims[0];
            let out_ty = res_ty.array_of(w);
            let out = bb.bind(
                "m",
                out_ty.clone(),
                Exp::Soac(Soac::Map { w, lam, arrs: vec![arr] }),
            );
            (SubExp::Var(out), out_ty)
        }
        G::Scan(op) => {
            let arr = input.as_var().expect("scan over variable");
            let out = bb.bind(
                "s",
                ty.clone(),
                Exp::Soac(Soac::Scan {
                    w: ty.dims[0],
                    lam: binop_lambda(op.binop(), ScalarType::I64),
                    nes: vec![SubExp::i64(op.neutral())],
                    arrs: vec![arr],
                }),
            );
            (SubExp::Var(out), ty.clone())
        }
        G::Reduce(op) => {
            let arr = input.as_var().expect("reduce over variable");
            let out = bb.bind(
                "r",
                Type::i64(),
                Exp::Soac(Soac::Reduce {
                    w: ty.dims[0],
                    lam: binop_lambda(op.binop(), ScalarType::I64),
                    nes: vec![SubExp::i64(op.neutral())],
                    arrs: vec![arr],
                }),
            );
            (SubExp::Var(out), Type::i64())
        }
        G::Redomap(op, steps) => {
            let arr = input.as_var().expect("redomap over variable");
            let mut lb = LambdaBuilder::new();
            let x = lb.param("x", Type::i64());
            let (res, _) = build(&G::Chain(steps.clone()), SubExp::Var(x), &Type::i64(), &mut lb.body);
            let map = lb.finish(vec![res], vec![Type::i64()]);
            let out = bb.bind(
                "rm",
                Type::i64(),
                Exp::Soac(Soac::Redomap {
                    w: ty.dims[0],
                    red: binop_lambda(op.binop(), ScalarType::I64),
                    map,
                    nes: vec![SubExp::i64(op.neutral())],
                    arrs: vec![arr],
                }),
            );
            (SubExp::Var(out), Type::i64())
        }
        G::Loop(k, inner) => {
            let p = Param::fresh("acc", ty.clone());
            let ivar = VName::fresh("i");
            let mut lb = BodyBuilder::new();
            let (res, res_ty) = build(inner, SubExp::Var(p.name), ty, &mut lb);
            assert_eq!(&res_ty, ty, "loop body must preserve shape");
            let out = bb.bind_multi(
                "loopres",
                vec![ty.clone()],
                Exp::Loop {
                    params: vec![(p, input)],
                    ivar,
                    bound: SubExp::i64(*k as i64),
                    body: lb.finish(vec![res]),
                },
            );
            (SubExp::Var(out[0]), ty.clone())
        }
        G::Seq(a, b) => {
            let (mid, mid_ty) = build(a, input, ty, bb);
            build(b, mid, &mid_ty, bb)
        }
        G::IfWide(gt, gf) => {
            // Condition: outer size >= 2 — a host-known value, invariant
            // to every surrounding map context (rule G8 applies when this
            // lands inside a distributed body).
            let w = ty.dims.first().copied().unwrap_or(SubExp::i64(1));
            let cond = bb.binop(BinOp::Le, SubExp::i64(2), w, Type::bool());
            let mut tb = BodyBuilder::new();
            let (tr, t_ty) = build(gt, input, ty, &mut tb);
            let mut fb = BodyBuilder::new();
            let (fr, f_ty) = build(gf, input, ty, &mut fb);
            assert_eq!(t_ty, f_ty, "IfWide branches must agree on shape");
            let out = bb.bind_multi(
                "ifres",
                vec![t_ty.clone()],
                Exp::If {
                    cond: SubExp::Var(cond),
                    tb: tb.finish(vec![tr]),
                    fb: fb.finish(vec![fr]),
                    ret: vec![t_ty.clone()],
                },
            );
            (SubExp::Var(out[0]), t_ty)
        }
    }
}

/// Assemble a whole program: parameters `[a][b]i64` plus the transform.
fn make_program(g: &G) -> ir::Program {
    let mut pb = ProgramBuilder::new("generated");
    let a = pb.size_param("a");
    let b = pb.size_param("b");
    let input_ty = Type::i64().array_of(SubExp::Var(b)).array_of(SubExp::Var(a));
    let xs = pb.param("xs", input_ty.clone());
    let (res, res_ty) = build(g, SubExp::Var(xs), &input_ty, &mut pb.body);
    pb.finish(vec![res], vec![res_ty])
}

fn make_args(a: i64, b: i64, seed: &[i64]) -> Vec<Value> {
    let n = (a * b) as usize;
    let data: Vec<i64> = (0..n).map(|i| seed[i % seed.len()]).collect();
    vec![
        Value::i64_(a),
        Value::i64_(b),
        Value::Array(ArrayVal::new(vec![a, b], Buffer::I64(data))),
    ]
}

/// Rank-3 variant: parameters `[a][b][c]i64` — exercises the deepest
/// nests (three-level contexts, like LocVolCalib's version 3).
fn make_program3(g: &G) -> ir::Program {
    let mut pb = ProgramBuilder::new("generated3");
    let a = pb.size_param("a");
    let b = pb.size_param("b");
    let c = pb.size_param("c");
    let input_ty = Type::i64()
        .array_of(SubExp::Var(c))
        .array_of(SubExp::Var(b))
        .array_of(SubExp::Var(a));
    let xs = pb.param("xs", input_ty.clone());
    let (res, res_ty) = build(g, SubExp::Var(xs), &input_ty, &mut pb.body);
    pb.finish(vec![res], vec![res_ty])
}

fn make_args3(a: i64, b: i64, c: i64, seed: &[i64]) -> Vec<Value> {
    let n = (a * b * c) as usize;
    let data: Vec<i64> = (0..n).map(|i| seed[i % seed.len()]).collect();
    vec![
        Value::i64_(a),
        Value::i64_(b),
        Value::i64_(c),
        Value::Array(ArrayVal::new(vec![a, b, c], Buffer::I64(data))),
    ]
}

/// The committed regression file, addressed explicitly: the vendored
/// proptest stand-in has no implicit source-derived path, so without
/// this the `cc` lines would be silently ignored.
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.proptest-regressions");

/// CI gate: the committed regression file must actually parse to at
/// least one replayable seed. Guards against the path drifting out
/// from under the config (which would silently disable replay).
#[test]
fn regression_file_is_loaded() {
    let seeds = proptest::test_runner::load_persisted_seeds(REGRESSIONS.as_ref())
        .expect("tests/properties.proptest-regressions must be readable");
    assert!(
        !seeds.is_empty(),
        "no `cc` seeds parsed from {REGRESSIONS}; persisted failures would not replay"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48).with_failure_persistence(REGRESSIONS))]

    /// The central property: for every generated program, every
    /// flattening mode, and every threshold extreme, the flattened
    /// program computes exactly the same values as the source.
    #[test]
    fn flattening_preserves_semantics(
        g in any_g(2),
        a in 1i64..5,
        b in 1i64..5,
        seed in prop::collection::vec(-9i64..9, 1..6),
    ) {
        let prog = make_program(&g);
        // Rank bookkeeping coherence: the program's declared result rank
        // matches the generator's prediction.
        prop_assert_eq!(prog.ret[0].rank(), g.out_rank(2));
        prop_assert!(ir::typecheck::check_source(&prog).is_ok(),
            "generator built an ill-typed program:\n{}", ir::pretty::program(&prog));
        let args = make_args(a, b, &seed);
        let reference = run_program(&prog, &args, &Thresholds::new()).unwrap();

        for cfg in [
            compiler::FlattenConfig::moderate(),
            compiler::FlattenConfig::incremental(),
            compiler::FlattenConfig::full(),
        ] {
            let fl = compiler::flatten(&prog, &cfg).unwrap();
            for setting in [0i64, 4, Thresholds::DEFAULT, i64::MAX] {
                let t = Thresholds::uniform(fl.thresholds.ids(), setting);
                let got = run_program(&fl.prog, &args, &t).unwrap();
                prop_assert_eq!(
                    &reference, &got,
                    "mode {:?} at t={} diverged\nsource:\n{}\nflattened:\n{}",
                    cfg.mode, setting,
                    ir::pretty::program(&prog),
                    ir::pretty::program(&fl.prog)
                );
            }
        }
    }

    /// Depth-3 nests: the same exact-equality property over rank-3
    /// inputs, covering three-level contexts and deeper version trees.
    #[test]
    fn flattening_preserves_semantics_rank3(
        g in any_g(3),
        a in 1i64..4,
        b in 1i64..4,
        c in 1i64..4,
        seed in prop::collection::vec(-9i64..9, 1..5),
    ) {
        let prog = make_program3(&g);
        prop_assert!(ir::typecheck::check_source(&prog).is_ok());
        let args = make_args3(a, b, c, &seed);
        let reference = run_program(&prog, &args, &Thresholds::new()).unwrap();
        for cfg in [
            compiler::FlattenConfig::moderate(),
            compiler::FlattenConfig::incremental(),
        ] {
            let fl = compiler::flatten(&prog, &cfg).unwrap();
            for setting in [0i64, Thresholds::DEFAULT, i64::MAX] {
                let t = Thresholds::uniform(fl.thresholds.ids(), setting);
                let got = run_program(&fl.prog, &args, &t).unwrap();
                prop_assert_eq!(&reference, &got,
                    "mode {:?} t={}\n{}", cfg.mode, setting,
                    ir::pretty::program(&fl.prog));
            }
        }
    }

    /// The simulator accepts every generated flattened program and is
    /// deterministic; the path it records matches the interpreter's.
    #[test]
    fn simulator_covers_generated_programs(
        g in any_g(2),
        a in 1i64..5,
        b in 1i64..5,
    ) {
        let prog = make_program(&g);
        let fl = compiler::flatten_incremental(&prog).unwrap();
        let args = make_args(a, b, &[1, 2, 3]);
        let dev = gpu::DeviceSpec::k40();
        for setting in [0i64, Thresholds::DEFAULT, i64::MAX] {
            let t = Thresholds::uniform(fl.thresholds.ids(), setting);
            let r1 = gpu::simulate_values(&fl.prog, &args, &t, &dev).unwrap();
            let r2 = gpu::simulate_values(&fl.prog, &args, &t, &dev).unwrap();
            prop_assert_eq!(r1.cost.total_cycles, r2.cost.total_cycles);

            let mut interp = ir::interp::Interp::new(&t);
            interp.bind_args(&fl.prog, &args).unwrap();
            interp.eval_body(&fl.prog.body).unwrap();
            let mut isig: Vec<(u32,bool)> =
                interp.path.iter().map(|(id, t)| (id.0, *t)).collect();
            isig.sort_unstable();
            isig.dedup();
            let mut ssig: Vec<(u32,bool)> =
                r1.path.iter().map(|c| (c.id.0, c.taken)).collect();
            ssig.sort_unstable();
            ssig.dedup();
            prop_assert_eq!(isig, ssig);
        }
    }

    /// Fusion never changes semantics on generated programs.
    #[test]
    fn fusion_preserves_semantics(
        g in any_g(2),
        a in 1i64..4,
        b in 1i64..4,
    ) {
        let prog = make_program(&g);
        let args = make_args(a, b, &[2, -3, 5]);
        let reference = run_program(&prog, &args, &Thresholds::new()).unwrap();
        let mut fused = prog.clone();
        ir::fusion::fuse_program(&mut fused);
        prop_assert!(ir::typecheck::check_source(&fused).is_ok());
        let got = run_program(&fused, &args, &Thresholds::new()).unwrap();
        prop_assert_eq!(reference, got);
    }

    /// Alpha-renaming is semantically invisible.
    #[test]
    fn renaming_preserves_semantics(
        g in any_g(2),
        a in 1i64..4,
        b in 1i64..4,
    ) {
        let prog = make_program(&g);
        let args = make_args(a, b, &[1, -2]);
        let reference = run_program(&prog, &args, &Thresholds::new()).unwrap();
        let renamed = ir::Program {
            body: ir::subst::rename_body(&prog.body),
            ..prog.clone()
        };
        let got = run_program(&renamed, &args, &Thresholds::new()).unwrap();
        prop_assert_eq!(reference, got);
    }
}
