-- V101: a SOAC width is grown past the extent of its input.
-- inject: grow-width
-- expect: V101 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
