-- V202: a threshold path has a phantom ancestor (children_of).
-- inject: corrupt-threshold-path
-- expect: V202 @0:0
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
