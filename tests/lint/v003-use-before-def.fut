-- V003: a statement is hoisted above the definition it uses.
-- inject: use-before-def
-- expect: V003 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
