-- V004: a destroyed statement binds no names (malformed ANF).
-- inject: empty-pattern
-- expect: V004 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
