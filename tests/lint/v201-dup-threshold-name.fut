-- V201: two thresholds end up with the same tuning name.
-- inject: dup-threshold-name
-- expect: V201 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
