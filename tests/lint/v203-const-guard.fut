-- V203: a version guard is replaced by a constant.
-- inject: const-guard
-- expect: V203 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
