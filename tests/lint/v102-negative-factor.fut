-- V102: a threshold guard gains a provably negative factor.
-- inject: negative-factor
-- expect: V102 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
