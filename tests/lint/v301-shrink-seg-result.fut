-- V301: a segop result extent disagrees with its parallel space.
-- inject: shrink-seg-result
-- expect: V301 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
