-- V002: a rewrite leaves a reference to a deleted binding.
-- inject: dangling-use
-- expect: V002 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
