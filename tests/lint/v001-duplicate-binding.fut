-- V001: a pass that copies code without renaming rebinds a name.
-- inject: duplicate-binding
-- expect: V001 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
