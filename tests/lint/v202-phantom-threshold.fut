-- V202: a guard references a threshold that was never minted.
-- inject: phantom-threshold
-- expect: V202 @5:3
def main [n][m] (xss: [n][m]i64) (ys: [m]i64) (c: i64) =
  map (\r -> redomap (+) (\x -> x * c) 0 r) xss
