//! Acceptance tests for `flat-perf`: the persistent run archive, the
//! bitwise-reconciling attribution diff, and the threshold-regret
//! what-if profiler — both through the library API and the `flatc perf`
//! command-line surface.
//!
//! The diff's acceptance invariant: for any two archived runs, every
//! per-kernel delta row must reconcile *bitwise* with both run totals —
//! replaying each run's archived launch costs in launch order from the
//! diff's own rows reproduces `total_cycles` exactly (f64 addition is
//! order-sensitive, so this catches any reordering or loss in the
//! archive → diff round trip, not just approximate agreement).

use incremental_flattening::prelude::*;
use ir::interp::Thresholds;
use std::process::Command;

fn example(name: &str) -> String {
    format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn flatc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_flatc"))
        .args(args)
        .env_remove("FLAT_OBS")
        .output()
        .expect("flatc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flat-perf-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Simulate a flattened program and archive the run, the way the
/// `--archive` flag on `flatc simulate` does.
fn sim_record(
    fl: &compiler::Flattened,
    name: &str,
    args: &[gpu::AbsValue],
    t: &Thresholds,
    dev: &gpu::DeviceSpec,
) -> (gpu::SimReport, perf::RunRecord) {
    let rep = gpu::simulate(&fl.prog, args, t, dev).unwrap();
    let rec = perf::from_sim(name, None, name, &[], &rep, &fl.prog.prov, dev);
    (rep, rec)
}

/// The diff invariant on one pair of archived runs.
fn assert_diff_reconciles(
    a: &(gpu::SimReport, perf::RunRecord),
    b: &(gpu::SimReport, perf::RunRecord),
    what: &str,
) {
    // `diff_records` re-runs the reconciliation internally and refuses
    // to return a diff that does not reconcile; the assertions below
    // only make the bitwise claims visible in the test.
    let diff = perf::diff_records(&a.1, &b.1).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(
        diff.a_total.to_bits(),
        a.0.cost.total_cycles.to_bits(),
        "{what}: diff total A must be the sim total, bitwise"
    );
    assert_eq!(
        diff.b_total.to_bits(),
        b.0.cost.total_cycles.to_bits(),
        "{what}: diff total B must be the sim total, bitwise"
    );
    // Simulated totals are exactly the launch costs in launch order, so
    // the kernel-side sums agree with the totals bitwise as well.
    assert_eq!(diff.a_kernel_sum.to_bits(), diff.a_total.to_bits(), "{what}");
    assert_eq!(diff.b_kernel_sum.to_bits(), diff.b_total.to_bits(), "{what}");
    // Every archived kernel of both runs must appear in exactly one row.
    let a_entries: usize = diff.rows.iter().map(|r| r.a.len()).sum();
    let b_entries: usize = diff.rows.iter().map(|r| r.b.len()).sum();
    assert_eq!(a_entries, a.1.kernels.len(), "{what}");
    assert_eq!(b_entries, b.1.kernels.len(), "{what}");
}

/// The acceptance property, on the checked-in example programs: archive
/// records of simulated runs diff with bitwise reconciliation, across
/// code versions (threshold settings) and data sizes — including diffs
/// of runs that took *different* paths, where rows are one-sided.
#[test]
fn diffs_reconcile_bitwise_on_example_programs() {
    let dev = gpu::DeviceSpec::k40();
    type ArgsFn = fn(i64) -> Vec<gpu::AbsValue>;
    let cases: [(&str, &str, ArgsFn); 2] = [
        ("matmul.fut", "matmul", |n| {
            vec![
                gpu::AbsValue::known(ir::Const::I64(n)),
                gpu::AbsValue::known(ir::Const::I64(64)),
                gpu::AbsValue::known(ir::Const::I64(64)),
                gpu::AbsValue::array(vec![n, 64], ir::ScalarType::F32),
                gpu::AbsValue::array(vec![64, 64], ir::ScalarType::F32),
            ]
        }),
        ("sumrows.fut", "sumrows", |n| {
            vec![
                gpu::AbsValue::known(ir::Const::I64(n)),
                gpu::AbsValue::known(ir::Const::I64(256)),
                gpu::AbsValue::array(vec![n, 256], ir::ScalarType::F32),
            ]
        }),
    ];
    for (file, entry, mk_args) in cases {
        let src = std::fs::read_to_string(example(file)).unwrap();
        let prog = lang::compile(&src, entry).unwrap();
        let fl = compiler::flatten_incremental(&prog).unwrap();
        let settings = [0, Thresholds::DEFAULT, i64::MAX];
        for n in [2, 64, 1024] {
            let runs: Vec<_> = settings
                .iter()
                .map(|&s| {
                    let t = Thresholds::uniform(fl.thresholds.ids(), s);
                    sim_record(&fl, entry, &mk_args(n), &t, &dev)
                })
                .collect();
            for a in &runs {
                for b in &runs {
                    assert_diff_reconciles(a, b, &format!("{file} n={n}"));
                }
            }
            // A self-diff is all-zero with nothing one-sided.
            let diff = perf::diff_records(&runs[0].1, &runs[0].1).unwrap();
            assert!(diff.rows.iter().all(|r| r.delta == 0.0), "{file} n={n}");
            assert_eq!((diff.only_a, diff.only_b), (0, 0));
        }
    }
}

/// The same property over the whole benchmark suite (every Fig. 7
/// program on its first paper dataset, extreme threshold settings
/// against the default) — locvolcalib's data-dependent control flow
/// included.
#[test]
fn diffs_reconcile_bitwise_on_every_benchmark() {
    let dev = gpu::DeviceSpec::k40();
    let cfg = compiler::FlattenConfig::incremental();
    for b in bench_suite::all_benchmarks() {
        let fl = b.flatten(&cfg);
        let d = &b.datasets[0];
        let runs: Vec<_> = [0, Thresholds::DEFAULT, i64::MAX]
            .iter()
            .map(|&s| {
                let t = Thresholds::uniform(fl.thresholds.ids(), s);
                sim_record(&fl, b.name, &d.args, &t, &dev)
            })
            .collect();
        for a in &runs {
            for bb in &runs {
                assert_diff_reconciles(a, bb, &format!("{}/{}", b.name, d.name));
            }
        }
    }
}

/// Archive records survive the JSONL round trip bitwise: parsing a
/// written line reproduces every cost field exactly, because costs are
/// stored with their raw bit patterns alongside the decimal rendering.
#[test]
fn archive_round_trip_is_bitwise() {
    let dev = gpu::DeviceSpec::k40();
    let cfg = compiler::FlattenConfig::incremental();
    let b = &bench_suite::all_benchmarks()[0];
    let fl = b.flatten(&cfg);
    let (rep, mut rec) = sim_record(
        &fl,
        b.name,
        &b.datasets[0].args,
        &Thresholds::new(),
        &dev,
    );
    perf::stamp(&mut rec);
    let back = perf::RunRecord::parse(&rec.to_json_line()).unwrap().unwrap();
    assert_eq!(back.total_cycles.to_bits(), rep.cost.total_cycles.to_bits());
    assert_eq!(back.kernels.len(), rec.kernels.len());
    for (k0, k1) in rec.kernels.iter().zip(&back.kernels) {
        assert_eq!(k0.cycles.to_bits(), k1.cycles.to_bits());
        assert_eq!(k0.key, k1.key);
    }
}

/// The CLI surface end to end: `--archive` on simulate, `perf log`,
/// `perf diff` with selectors, and the folded-stacks output.
#[test]
fn cli_archive_log_and_diff() {
    let dir = tmp_dir("cli");
    let archive = dir.join("archive.jsonl");
    let archive = archive.to_str().unwrap();
    let src = example("sumrows.fut");

    let run = |extra: &[&str]| {
        let mut args = vec![
            "simulate",
            &src,
            "sumrows",
            "--arg",
            "32",
            "--arg",
            "256",
            "--arg",
            "[32][256]f32",
            "--archive",
            archive,
        ];
        args.extend_from_slice(extra);
        let (ok, _, stderr) = flatc(&args);
        assert!(ok, "{stderr}");
        assert!(stderr.contains("archived run"), "{stderr}");
    };
    run(&[]);
    run(&["--threshold", "suff_outer_par_0=1"]);

    let (ok, log, _) = flatc(&["perf", "log", "--archive", archive]);
    assert!(ok);
    assert_eq!(log.matches("simulate").count(), 2, "{log}");
    assert!(log.contains("sumrows"), "{log}");

    let folded = dir.join("diff.folded");
    let (ok, diff, stderr) = flatc(&[
        "perf",
        "diff",
        "last~1",
        "last",
        "--archive",
        archive,
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    // The two runs took different paths, so the diff is one-sided in
    // both directions, and it must say the totals reconciled.
    assert!(diff.contains("only in A") && diff.contains("only in B"), "{diff}");
    let folded_text = std::fs::read_to_string(&folded).unwrap();
    assert!(!folded_text.trim().is_empty());
    for line in folded_text.lines() {
        // difffolded format: `frame;frame;leaf countA countB`.
        let fields: Vec<&str> = line.rsplitn(3, ' ').collect();
        assert_eq!(fields.len(), 3, "{line}");
        fields[0].parse::<u64>().unwrap();
        fields[1].parse::<u64>().unwrap();
    }

    // Selector errors are usage errors, not crashes.
    let (ok, _, stderr) = flatc(&["perf", "diff", "last~9", "last", "--archive", archive]);
    assert!(!ok);
    assert!(stderr.contains("past the archive"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The regret acceptance criterion, on a Fig. 7 benchmark: run
/// LocVolCalib with the root outer-parallelism threshold deliberately
/// mis-set (`i64::MAX` refuses the outer-parallel version on a dataset
/// whose parallelism is all in the outer dimension), and the profiler
/// must identify exactly that decision as the top regret.
#[test]
fn regret_identifies_misset_threshold_on_locvolcalib() {
    let prog = lang::compile(bench_suite::locvolcalib::SOURCE, "locvolcalib").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    // The root decision of the branching tree: outer sufficiency.
    let root = fl
        .thresholds
        .iter()
        .find(|t| t.path.is_empty())
        .expect("locvolcalib has a threshold tree");
    assert!(root.name.contains("outer"), "{}", root.name);

    // Wide outer (256 options), tiny inner — everything the executor
    // can use lives at the outer level.
    let (s, x, y, t) = (256i64, 4i64, 8i64, 2i64);
    let specs = vec![
        gpu::AbsValue::known(ir::Const::I64(s)),
        gpu::AbsValue::known(ir::Const::I64(x)),
        gpu::AbsValue::known(ir::Const::I64(y)),
        gpu::AbsValue::array(vec![s, x, y], ir::ScalarType::F32),
        gpu::AbsValue::array(vec![s, y, x], ir::ScalarType::F32),
        gpu::AbsValue::known(ir::Const::I64(t)),
    ];
    let args = exec::materialize(&specs, 42).unwrap();

    let mut mis = Thresholds::new();
    mis.set(root.id, i64::MAX);
    let cfg = perf::RegretConfig {
        thresholds: mis,
        threads: Some(2),
        reps: 2,
        ..perf::RegretConfig::default()
    };
    let rep = perf::profile_regret(&fl.prog, &fl.thresholds, "locvolcalib", &args, &cfg).unwrap();

    // The live run refused the root comparison...
    assert!(
        rep.live_sig.contains(&(root.id.0, false)),
        "live sig {:?} should refuse t{}",
        rep.live_sig,
        root.id.0
    );
    // ...and that refusal is the top regret: flipping it wins.
    let top = rep.decisions.first().expect("live path took decisions");
    assert_eq!(top.id, root.id.0, "top regret: {}", perf::render_regret(&rep));
    assert!(!top.taken);
    assert!(
        top.regret_ns > 0.0,
        "refusing outer parallelism must cost wall time:\n{}",
        perf::render_regret(&rep)
    );
    assert!(top.best_alt_sig.contains(&(root.id.0, true)));
    // The shape regime is recorded with the verdict.
    assert!(rep.shape_class.contains(';'), "{}", rep.shape_class);
}

/// Regret sweeps double as autotuning samples: the emitted log lines
/// round-trip through `autotune`'s loader and join, and `warm_start`
/// recovers one seed observation per measured version path.
#[test]
fn regret_samples_warm_start_the_tuner() {
    let src = std::fs::read_to_string(example("sumrows.fut")).unwrap();
    let prog = lang::compile(&src, "sumrows").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let specs = vec![
        gpu::AbsValue::known(ir::Const::I64(16)),
        gpu::AbsValue::known(ir::Const::I64(64)),
        gpu::AbsValue::array(vec![16, 64], ir::ScalarType::F32),
    ];
    let args = exec::materialize(&specs, 7).unwrap();
    let cfg = perf::RegretConfig {
        threads: Some(2),
        reps: 1,
        warmup: 0,
        ..perf::RegretConfig::default()
    };
    let rep = perf::profile_regret(&fl.prog, &fl.thresholds, "sumrows", &args, &cfg).unwrap();
    assert!(!rep.alternatives.is_empty());

    let dir = tmp_dir("warmstart");
    let log = dir.join("regret.jsonl");
    perf::append_regret_samples(&log, &rep).unwrap();

    let samples = tuning::load_sample_log(&log).unwrap();
    assert_eq!(samples.len(), rep.alternatives.len());
    let join = tuning::join_samples(&fl.thresholds, &samples);
    let seeds = join.warm_start();
    assert_eq!(
        seeds.len(),
        rep.alternatives.len(),
        "every forced path must come back as an in-tree warm-start seed"
    );
    for (sig, wall) in &seeds {
        assert!(wall.is_finite() && *wall > 0.0, "{sig:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `flatc perf regret` surface: runs, reports, and writes samples.
#[test]
fn cli_regret_reports_and_logs_samples() {
    let dir = tmp_dir("cli-regret");
    let log = dir.join("samples.jsonl");
    let src = example("sumrows.fut");
    let (ok, stdout, stderr) = flatc(&[
        "perf",
        "regret",
        &src,
        "sumrows",
        "--arg",
        "16",
        "--arg",
        "64",
        "--arg",
        "[16][64]f32",
        "--threads",
        "2",
        "--reps",
        "1",
        "--warmup",
        "0",
        "--sample-log",
        log.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("regret"), "{stdout}");
    assert!(stdout.contains("live path"), "{stdout}");
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(!text.trim().is_empty());
    for line in text.lines() {
        assert!(line.contains("\"whatif\""), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `--check` gate refuses to compare wall-clock measurements taken
/// by different backends: a `vm` baseline cannot gate an `exec`
/// measurement (the numbers are commensurable in units but not in
/// meaning — the VM's compiled dispatch is the thing being measured),
/// and the error tells the user how to re-record.
#[test]
fn bench_check_refuses_vm_vs_exec_baseline() {
    let dir = tmp_dir("vm-gate");
    let base = dir.join("baseline.json");
    let base = base.to_str().unwrap();

    let (ok, _, stderr) = flatc(&[
        "bench", "--backend", "vm", "--write", "--baseline", base, "--reps", "1", "--threads",
        "2", "--quiet",
    ]);
    assert!(ok, "{stderr}");

    // Same backend: the gate runs (huge tolerance so debug-build timing
    // noise cannot fail it — this test is about the refusal, not speed).
    let (ok, stdout, stderr) = flatc(&[
        "bench", "--backend", "vm", "--check", "--baseline", base, "--reps", "1", "--threads",
        "2", "--tolerance", "1e9", "--quiet",
    ]);
    assert!(ok, "{stdout}{stderr}");

    // Cross backend: refused before any comparison happens.
    let (ok, _, stderr) = flatc(&[
        "bench", "--backend", "exec", "--check", "--baseline", base, "--reps", "1", "--threads",
        "2", "--tolerance", "1e9", "--quiet",
    ]);
    assert!(!ok);
    assert!(stderr.contains("cannot compare across backends"), "{stderr}");
    assert!(stderr.contains("`vm`"), "{stderr}");
    assert!(stderr.contains("--backend exec"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// VM runs archive like executor runs — same report type, backend tag
/// `"vm"` — and survive the JSONL round trip bitwise, wall times and
/// per-launch costs alike.
#[test]
fn vm_records_round_trip_archive_bitwise() {
    let src = std::fs::read_to_string(example("sumrows.fut")).unwrap();
    let prog = lang::compile(&src, "sumrows").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let specs = vec![
        gpu::AbsValue::known(ir::Const::I64(16)),
        gpu::AbsValue::known(ir::Const::I64(64)),
        gpu::AbsValue::array(vec![16, 64], ir::ScalarType::F32),
    ];
    let args = exec::materialize(&specs, 7).unwrap();
    let cfg = exec::ExecConfig { threads: Some(2), ..exec::ExecConfig::default() };
    let (rep, m) = vm::measure(&fl.prog, &args, &cfg, 2, 1).unwrap();

    let mut rec = perf::from_vm(
        "sumrows",
        Some("examples/sumrows.fut"),
        &src,
        &["16".into(), "64".into(), "[16][64]f32".into()],
        &rep,
        m.median_nanos,
        2,
        &fl.prog.prov,
    );
    assert_eq!(rec.backend, "vm");
    assert!(!rec.kernels.is_empty(), "a vm run archives its launches");
    perf::stamp(&mut rec);
    let back = perf::RunRecord::parse(&rec.to_json_line()).unwrap().unwrap();
    assert_eq!(back.backend, "vm");
    assert_eq!(back.total_cycles.to_bits(), m.median_nanos.to_bits());
    assert_eq!(back.path, rep.signature());
    assert_eq!(back.threads, Some(rep.threads));
    assert_eq!(back.kernels.len(), rec.kernels.len());
    for (k0, k1) in rec.kernels.iter().zip(&back.kernels) {
        assert_eq!(k0.cycles.to_bits(), k1.cycles.to_bits());
        assert_eq!(k0.key, k1.key);
        assert_eq!(k0.launches, k1.launches);
    }
}

/// Two archived VM runs diff with the same bitwise reconciliation as
/// simulated runs — including runs that took different version paths —
/// and a VM run refuses to diff against an executor run.
#[test]
fn diff_reconciles_two_vm_runs() {
    let src = std::fs::read_to_string(example("sumrows.fut")).unwrap();
    let prog = lang::compile(&src, "sumrows").unwrap();
    let fl = compiler::flatten_incremental(&prog).unwrap();
    let specs = vec![
        gpu::AbsValue::known(ir::Const::I64(16)),
        gpu::AbsValue::known(ir::Const::I64(64)),
        gpu::AbsValue::array(vec![16, 64], ir::ScalarType::F32),
    ];
    let args = exec::materialize(&specs, 7).unwrap();

    let vm_run = |setting: i64| {
        let cfg = exec::ExecConfig {
            thresholds: Thresholds::uniform(fl.thresholds.ids(), setting),
            threads: Some(2),
            ..exec::ExecConfig::default()
        };
        let (rep, m) = vm::measure(&fl.prog, &args, &cfg, 1, 0).unwrap();
        perf::from_vm("sumrows", None, &src, &[], &rep, m.median_nanos, 1, &fl.prog.prov)
    };
    // 0 accepts every parallel version, i64::MAX refuses them all, so
    // the two runs take different paths and the diff has one-sided rows.
    let a = vm_run(0);
    let b = vm_run(i64::MAX);
    assert_ne!(a.path, b.path, "extreme thresholds must take different paths");

    let diff = perf::diff_records(&a, &b).unwrap();
    assert_eq!(diff.a_total.to_bits(), a.total_cycles.to_bits());
    assert_eq!(diff.b_total.to_bits(), b.total_cycles.to_bits());
    let a_entries: usize = diff.rows.iter().map(|r| r.a.len()).sum();
    let b_entries: usize = diff.rows.iter().map(|r| r.b.len()).sum();
    assert_eq!(a_entries, a.kernels.len());
    assert_eq!(b_entries, b.kernels.len());
    assert!(diff.only_a > 0 || diff.only_b > 0, "paths differ, so rows are one-sided");

    // Self-diff: all-zero, nothing one-sided.
    let self_diff = perf::diff_records(&a, &a).unwrap();
    assert!(self_diff.rows.iter().all(|r| r.delta == 0.0));
    assert_eq!((self_diff.only_a, self_diff.only_b), (0, 0));

    // A vm record never diffs against an exec record, even though both
    // measure wall nanoseconds on the same machine.
    let cfg = exec::ExecConfig { threads: Some(2), ..exec::ExecConfig::default() };
    let (erep, em) = exec::measure(&fl.prog, &args, &cfg, 1, 0).unwrap();
    let e = perf::from_exec("sumrows", None, &src, &[], &erep, em.median_nanos, 1, &fl.prog.prov);
    let err = perf::diff_records(&a, &e).unwrap_err();
    assert!(err.contains("cannot diff across backends"), "{err}");
    assert!(err.contains("`vm`") && err.contains("`exec`"), "{err}");
}

/// Satellite guarantees: baselines stamp their provenance, and the
/// sample-log loader skips (with a warning) schema versions it does not
/// understand instead of failing or misreading them.
#[test]
fn baselines_and_sample_logs_are_versioned() {
    let base = bench::measure_suite(&gpu::DeviceSpec::k40());
    assert_eq!(base.version.as_deref(), Some(&*perf::version_string()));
    // Round trip keeps the stamp.
    let back = bench::Baseline::from_json(&base.to_json()).unwrap();
    assert_eq!(back.version, base.version);
    assert_eq!(back.git_rev, base.git_rev);

    let dir = tmp_dir("schema");
    let log = dir.join("mixed.jsonl");
    let good = r#"{"schema":1,"program":"p","kernel":"k","kind":"segmap","shape_class":"2^4","space":16.0,"sig":"t0+","path":[[0,true]],"threads":2,"grain":64,"wall_ns":100.0,"prov":0}"#;
    let future = good.replace("\"schema\":1", "\"schema\":99");
    std::fs::write(&log, format!("{good}\n{future}\n")).unwrap();
    let (samples, warnings) = tuning::load_sample_log_with_warnings(&log).unwrap();
    assert_eq!(samples.len(), 1);
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].contains("schema"), "{}", warnings[0]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite guarantee: `append_record` is safe under concurrent
/// writers. Many threads hammering one archive file must produce a
/// well-formed JSONL archive with every record intact — no torn or
/// interleaved lines — because each line is written under an exclusive
/// advisory file lock on an append-mode descriptor.
#[test]
fn concurrent_append_record_keeps_the_archive_intact() {
    let dir = tmp_dir("concurrent-append");
    let archive = dir.join("archive.jsonl");
    const WRITERS: usize = 16;
    const PER_WRITER: usize = 8;

    let ids: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let path = archive.clone();
                s.spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..PER_WRITER {
                        let mut rec = perf::RunRecord {
                            kind: "bench".into(),
                            program: format!("writer-{w}"),
                            backend: "flatd".into(),
                            device: "host".into(),
                            clock_ghz: 1.0,
                            total_cycles: (w * PER_WRITER + i) as f64,
                            // A fat payload makes torn writes likely if
                            // the lock were missing.
                            args: (0..64).map(|k| format!("arg-{w}-{i}-{k}")).collect(),
                            ..perf::RunRecord::default()
                        };
                        perf::stamp(&mut rec);
                        ids.push(perf::append_record(&path, &mut rec).unwrap());
                    }
                    ids
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(ids.len(), WRITERS * PER_WRITER);

    let (records, warnings) = perf::load_archive(&archive).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    assert_eq!(records.len(), WRITERS * PER_WRITER, "lost or torn records");
    // Every append's returned content id is present exactly once, and
    // every record round-trips with its payload intact.
    let mut seen: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
    seen.sort_unstable();
    let mut expect: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    expect.sort_unstable();
    assert_eq!(seen, expect);
    for rec in &records {
        assert_eq!(rec.args.len(), 64, "record {} lost its payload", rec.program);
        assert_eq!(rec.backend, "flatd");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
