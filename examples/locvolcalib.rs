//! The paper's §5.2 deep-dive, end to end: LocVolCalib (stochastic
//! volatility calibration) compiled, incrementally flattened into the
//! three code versions of Fig. 6c, tuned per device, and compared against
//! the two hand-written FinPar schedules on both simulated GPUs.
//!
//! Run with: `cargo run --example locvolcalib`

use incremental_flattening::prelude::*;
use tuning::{exhaustive_tune, TuningProblem};

fn main() {
    let bench = bench_suite::locvolcalib::benchmark();
    let mf = bench.flatten(&compiler::FlattenConfig::moderate());
    let incr = bench.flatten(&compiler::FlattenConfig::incremental());

    println!("== LocVolCalib after incremental flattening (cf. paper Fig. 6c) ==");
    println!("{}", ir::pretty::program(&incr.prog));
    println!(
        "{} thresholds guarding {} code versions; moderate flattening has {}.\n",
        incr.stats.num_thresholds,
        incr.stats.num_versions,
        mf.stats.num_versions
    );

    let default = Thresholds::new();
    for dev in [gpu::DeviceSpec::k40(), gpu::DeviceSpec::vega64()] {
        // Per-device tuning (§5.1: "we perform auto-tuning separately on
        // the two systems").
        let problem = TuningProblem::new(
            &incr,
            bench_suite::locvolcalib::tuning_datasets(),
            dev.clone(),
        );
        let tuned = exhaustive_tune(&problem, 1 << 20).expect("tuning").thresholds;

        println!("---- {} ----", dev.name);
        for d in bench_suite::locvolcalib::paper_datasets() {
            let mf_c = bench.cost(&mf, &dev, &d, &default).unwrap();
            let aif = bench.cost(&incr, &dev, &d, &tuned).unwrap();
            let fo = bench_suite::locvolcalib::finpar_out_cost(&dev, &d).unwrap();
            let fa = bench_suite::locvolcalib::finpar_all_cost(&dev, &d).unwrap();
            println!(
                "  {:<7} MF {:>9.0} µs | AIF {:>6.2}x | FinPar-Out {:>6.2}x | FinPar-All {:>6.2}x",
                d.name,
                dev.cycles_to_us(mf_c),
                mf_c / aif,
                mf_c / fo,
                mf_c / fa,
            );
        }
    }

    println!("\nNote how FinPar-Out (outer-parallel, hand-optimized sequential");
    println!("tridag) wins the large dataset on the K40 but loses on the Vega,");
    println!("whose fast local memory favours the intra-group version — the");
    println!("performance-portability problem the paper opens with.");
}
