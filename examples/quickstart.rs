//! Quickstart: compile a nested-parallel program, flatten it both ways,
//! and watch the guarded versions pick differently as the dataset shape
//! changes.
//!
//! Run with: `cargo run --example quickstart`

use incremental_flattening::prelude::*;

fn main() {
    // A batch of dot products: an outer map around an inner reduction —
    // the simplest program where "how much parallelism should we
    // exploit?" has a dataset-dependent answer.
    let src = "
def batchdot [n][m] (xss: [n][m]f32) (yss: [n][m]f32): [n]f32 =
  map (\\xs ys -> redomap (+) (*) 0f32 xs ys) xss yss
";
    let prog = lang::compile(src, "batchdot").expect("frontend");
    println!("== Source program ==\n{}", ir::pretty::program(&prog));

    // Moderate flattening: one version, chosen statically.
    let mf = compiler::flatten_moderate(&prog).expect("moderate flattening");
    println!(
        "Moderate flattening: {} segops, {} threshold(s)",
        mf.stats.num_segops, mf.stats.num_thresholds
    );

    // Incremental flattening: several guarded versions.
    let incr = compiler::flatten_incremental(&prog).expect("incremental flattening");
    println!(
        "Incremental flattening: {} segops, {} thresholds, {} code versions\n",
        incr.stats.num_segops, incr.stats.num_thresholds, incr.stats.num_versions
    );
    println!("== Multi-versioned program ==\n{}", ir::pretty::program(&incr.prog));

    // Simulate two shapes with the same total work on a K40-like GPU.
    let dev = gpu::DeviceSpec::k40();
    let t = Thresholds::new();
    for (n, m) in [(1 << 18, 1 << 4), (1 << 4, 1 << 18)] {
        let args = vec![
            gpu::AbsValue::known(ir::Const::I64(n)),
            gpu::AbsValue::known(ir::Const::I64(m)),
            gpu::AbsValue::array(vec![n, m], ir::ScalarType::F32),
            gpu::AbsValue::array(vec![n, m], ir::ScalarType::F32),
        ];
        let mf_rep = gpu::simulate(&mf.prog, &args, &t, &dev).unwrap();
        let if_rep = gpu::simulate(&incr.prog, &args, &t, &dev).unwrap();
        println!(
            "shape {n}x{m}: moderate {:9.1} µs | incremental {:9.1} µs | version path {:?}",
            mf_rep.microseconds,
            if_rep.microseconds,
            if_rep
                .path
                .iter()
                .map(|c| format!("t{}={}", c.id.0, c.taken))
                .collect::<Vec<_>>()
        );
    }

    // And check the semantics on real data with the interpreter.
    let vals = vec![
        ir::Value::i64_(2),
        ir::Value::i64_(3),
        ir::Value::f32_matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        ir::Value::f32_matrix(2, 3, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]),
    ];
    let out = ir::interp::run_program(&incr.prog, &vals, &t).unwrap();
    println!("\nbatchdot([[1,2,3],[4,5,6]], [[1,1,1],[2,2,2]]) = {:?}", out[0]);
}
