//! Bring your own program: write nested data parallelism in the surface
//! language (or construct IR directly with the builder API), flatten it,
//! check its semantics against the reference interpreter at every
//! threshold setting, and explore how version choice reacts to shape.
//!
//! Run with: `cargo run --example custom_program`

use incremental_flattening::prelude::*;

fn main() {
    // A k-means-style assignment step: for every point, the index-free
    // distance to the nearest of k centroids — an outer map around a
    // redomap around another redomap.
    let src = "
def nearest [n][k][d] (points: [n][d]f32) (centroids: [k][d]f32): [n]f32 =
  map (\\p ->
        redomap min (\\c ->
            redomap (+) (\\a b -> (a - b) * (a - b)) 0f32 c p)
          1000000f32 centroids)
      points
";
    let prog = lang::compile(src, "nearest").expect("frontend");
    let incr = compiler::flatten_incremental(&prog).expect("flattening");
    println!(
        "nearest: {} statements -> {} after incremental flattening ({} versions)\n",
        incr.stats.source_stms, incr.stats.target_stms, incr.stats.num_versions
    );

    // Semantics check: run source and flattened programs on the same
    // data, steering through *every* version by sweeping the thresholds.
    let vals = vec![
        ir::Value::i64_(4),                                     // n
        ir::Value::i64_(2),                                     // k
        ir::Value::i64_(3),                                     // d
        ir::Value::f32_matrix(4, 3, (0..12).map(|i| i as f32).collect()),
        ir::Value::f32_matrix(2, 3, vec![0.0, 1.0, 2.0, 9.0, 10.0, 11.0]),
    ];
    let reference = ir::interp::run_program(&prog, &vals, &Thresholds::new()).unwrap();
    for setting in [0, Thresholds::DEFAULT, i64::MAX] {
        let t = Thresholds::uniform(incr.thresholds.ids(), setting);
        let got = ir::interp::run_program(&incr.prog, &vals, &t).unwrap();
        assert!(
            reference[0].approx_eq(&got[0], 1e-4),
            "version at t={setting} disagrees!"
        );
        println!("thresholds = {setting:>20}: results agree with the source program");
    }
    println!("\nnearest distances: {:?}", reference[0]);

    // Shape exploration: which version does the default pick?
    let dev = gpu::DeviceSpec::vega64();
    println!("\nversion picked by the default thresholds on {}:", dev.name);
    for (n, k, d) in [(1_000_000, 8, 4), (64, 4096, 64), (16, 16, 1 << 16)] {
        let args = vec![
            gpu::AbsValue::known(ir::Const::I64(n)),
            gpu::AbsValue::known(ir::Const::I64(k)),
            gpu::AbsValue::known(ir::Const::I64(d)),
            gpu::AbsValue::array(vec![n, d], ir::ScalarType::F32),
            gpu::AbsValue::array(vec![k, d], ir::ScalarType::F32),
        ];
        let rep = gpu::simulate(&incr.prog, &args, &Thresholds::new(), &dev).unwrap();
        println!(
            "  n={n:<8} k={k:<5} d={d:<6} -> {:>10.1} µs, path {:?}",
            rep.microseconds,
            rep.path
                .iter()
                .map(|c| format!("t{}={}", c.id.0, c.taken))
                .collect::<Vec<_>>()
        );
    }
}
