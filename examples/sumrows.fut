-- Row sums: a map over a reduce — the smallest program with an
-- interesting incremental-flattening decision (outer map parallelism
-- vs. segmented reduction).
--
--   flatc tree     examples/sumrows.fut sumrows
--   flatc simulate examples/sumrows.fut sumrows --profile \
--     --arg 4096 --arg 512 --arg '[4096][512]f32'
--   flatc tune     examples/sumrows.fut sumrows --exhaustive \
--     --dataset '16,65536,[16][65536]f32' --dataset '65536,16,[65536][16]f32'

def sumrows [n][m] (xss: [n][m]f32): [n]f32 =
  map (\xs -> reduce (+) 0f32 xs) xss
