-- Matrix multiplication (Fig. 1 of the paper): a depth-2 nested map
-- whose innermost operation is a redomap. Incremental flattening gives
-- it three guarded versions (outer-parallel, intra-group, fully
-- flattened).
--
--   flatc flatten  examples/matmul.fut matmul --explain
--   flatc simulate examples/matmul.fut matmul --profile \
--     --arg 64 --arg 1024 --arg 64 --arg '[64][1024]f32' --arg '[1024][64]f32'

def matmul [n][m][p] (xss: [n][m]f32) (yss: [m][p]f32): [n][p]f32 =
  map (\xs -> map (\ys -> redomap (+) (*) 0f32 xs ys) (transpose yss)) xss
