-- LocVolCalib (Figs. 6–7 of the paper): an outer map over a sequential
-- time loop whose body maps a three-scan `tridag` solver over the rows
-- of two matrices. The parallelism profile is entirely shape-dependent
-- — wide-outer datasets want the outer-parallel version, narrow-outer
-- ones the flattened inner scans — which makes it the paper's flagship
-- case for incremental flattening (same program text as
-- `benchmarks::locvolcalib::SOURCE`).
--
--   flatc tree     examples/locvolcalib.fut locvolcalib
--   flatc simulate examples/locvolcalib.fut locvolcalib --profile \
--     --arg 128 --arg 64 --arg 32 --arg '[128][64][32]f32' \
--     --arg '[128][32][64]f32' --arg 4
--   flatc perf regret examples/locvolcalib.fut locvolcalib --threads 2 \
--     --arg 128 --arg 4 --arg 8 --arg '[128][4][8]f32' \
--     --arg '[128][8][4]f32' --arg 2

def tridag [m] (as: [m]f32): [m]f32 =
  let bs = scan (+) 0f32 as
  let cs = scan max 0f32 bs
  in scan min 1000000f32 cs

def locvolcalib [numS][numX][numY]
    (xsss0: [numS][numX][numY]f32)
    (ysss0: [numS][numY][numX]f32)
    (numT: i64): ([numS][numX][numY]f32, [numS][numY][numX]f32) =
  map (\xss0 yss0 ->
        loop (xss = xss0, yss = yss0) for t < numT do
          (map tridag xss, map tridag yss))
      xsss0 ysss0
