//! The paper's §2.2 motivating example end to end: flatten matrix
//! multiplication into guarded versions, autotune the thresholds on one
//! workload (k=20), and apply them to another (k=25) — reproducing the
//! Fig. 2 "best of both worlds" behaviour.
//!
//! Run with: `cargo run --example matmul_tuning`

use incremental_flattening::prelude::*;
use tuning::{exhaustive_tune, StochasticTuner, TuningProblem};

fn main() {
    let bench = bench_suite::matmul::benchmark();
    let incr = bench.flatten(&compiler::FlattenConfig::incremental());
    let dev = gpu::DeviceSpec::k40();

    println!("matmul flattens into {} guarded versions:", incr.stats.num_versions);
    println!("{}", incr.thresholds.render_tree());

    // Train on the k=20 sweep.
    let problem = TuningProblem::new(&incr, bench_suite::matmul::fig2_sweep(20), dev.clone());

    let stochastic = StochasticTuner::default().run(&problem).expect("tuning");
    println!(
        "stochastic tuner: {} candidates, {} real runs, {} cache hits",
        stochastic.candidates, stochastic.simulations, stochastic.cache_hits
    );

    let exhaustive = exhaustive_tune(&problem, 1 << 20).expect("tuning");
    println!(
        "exhaustive tuner: {} equivalence classes scanned with {} real runs\n",
        exhaustive.candidates, exhaustive.simulations
    );
    let tuned = exhaustive.thresholds;
    for (id, v) in {
        let mut ts: Vec<_> = tuned.iter().collect();
        ts.sort();
        ts
    } {
        println!("  {} = {}", incr.thresholds.info(id).name, v);
    }

    // Apply to the held-out k=25 sweep.
    println!("\nheld-out k=25 sweep on {} (runtime µs):", dev.name);
    println!("{:>4} {:>12} {:>12} {:>10}", "n", "untuned", "tuned", "version");
    let default = Thresholds::new();
    for (n_exp, d) in bench_suite::matmul::fig2_sweep(25).into_iter().enumerate() {
        let untuned = gpu::simulate(&incr.prog, &d.args, &default, &dev).unwrap();
        let tuned_rep = gpu::simulate(&incr.prog, &d.args, &tuned, &dev).unwrap();
        let version = if tuned_rep.path.iter().any(|c| c.taken) {
            "outer/tiled"
        } else {
            "fully flat"
        };
        println!(
            "{:>4} {:>12.1} {:>12.1} {:>10}",
            n_exp, untuned.microseconds, tuned_rep.microseconds, version
        );
    }
}
