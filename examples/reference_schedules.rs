//! The target language as a user-facing API: hand-write a GPU schedule
//! with the builder (the way the reference implementations in the
//! `benchmarks` crate are built), check it against the compiler-generated
//! code for semantics, and race the two under the simulator.
//!
//! Run with: `cargo run --example reference_schedules`

use incremental_flattening::prelude::*;
use ir::ast::*;
use ir::builder::{binop_lambda, LambdaBuilder, ProgramBuilder};
use ir::types::{Param, ScalarType, Type};

/// Hand-written batched dot product: one `segred` over both dimensions —
/// the schedule an expert would write for small batches of long rows.
fn handwritten() -> ir::Program {
    let mut pb = ProgramBuilder::new("batchdot_by_hand");
    let n = pb.size_param("n");
    let m = pb.size_param("m");
    let xss = pb.param(
        "xss",
        Type::f32().array_of(SubExp::Var(m)).array_of(SubExp::Var(n)),
    );
    let yss = pb.param(
        "yss",
        Type::f32().array_of(SubExp::Var(m)).array_of(SubExp::Var(n)),
    );

    // segred^1 ⟨xs ∈ xss, ys ∈ yss⟩⟨x ∈ xs, y ∈ ys⟩ (+) 0 (x*y)
    let xs = Param::fresh("xs", Type::f32().array_of(SubExp::Var(m)));
    let ys = Param::fresh("ys", Type::f32().array_of(SubExp::Var(m)));
    let x = Param::fresh("x", Type::f32());
    let y = Param::fresh("y", Type::f32());
    let mut body = LambdaBuilder::new();
    let xy = body.body.binop(BinOp::Mul, x.name, y.name, Type::f32());
    let body = body.body.finish(vec![SubExp::Var(xy)]);

    let seg = SegOp {
        kind: SegKind::Red {
            op: binop_lambda(BinOp::Add, ScalarType::F32),
            nes: vec![SubExp::f32(0.0)],
        },
        level: LVL_GRID,
        ctx: vec![
            CtxDim::new(SubExp::Var(n), vec![(xs.clone(), xss), (ys.clone(), yss)]),
            CtxDim::new(SubExp::Var(m), vec![(x, xs.name), (y, ys.name)]),
        ],
        body,
        body_ret: vec![Type::f32()],
        tiling: Tiling::None,
    };
    let out_t = Type::f32().array_of(SubExp::Var(n));
    let out = pb.body.bind("out", out_t.clone(), Exp::Seg(seg));
    let prog = pb.finish(vec![SubExp::Var(out)], vec![out_t]);
    ir::typecheck::check_target(&prog).expect("hand-written schedule is well-typed");
    prog
}

fn main() {
    let src = "
def batchdot [n][m] (xss: [n][m]f32) (yss: [n][m]f32): [n]f32 =
  map (\\xs ys -> redomap (+) (*) 0f32 xs ys) xss yss
";
    let compiled = compiler::flatten_incremental(&lang::compile(src, "batchdot").unwrap())
        .expect("flattening");
    let by_hand = handwritten();
    println!("== the hand-written schedule ==\n{}", ir::pretty::program(&by_hand));

    // Semantics agree on concrete data.
    let vals = vec![
        ir::Value::i64_(2),
        ir::Value::i64_(3),
        ir::Value::f32_matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        ir::Value::f32_matrix(2, 3, vec![1.0, 1.0, 1.0, 0.5, 0.5, 0.5]),
    ];
    let t = Thresholds::new();
    let a = ir::interp::run_program(&compiled.prog, &vals, &t).unwrap();
    let b = ir::interp::run_program(&by_hand, &vals, &t).unwrap();
    assert!(a[0].approx_eq(&b[0], 1e-5));
    println!("semantics: hand-written == compiler-generated ✓\n");

    // Race them across shapes: the fixed schedule wins where its choice
    // is right and loses elsewhere; the multi-versioned program adapts.
    let dev = gpu::DeviceSpec::k40();
    println!("{:>12} {:>12} {:>14} {:>14}", "n", "m", "by hand (µs)", "compiled (µs)");
    for (n, m) in [(16i64, 1 << 18), (1 << 10, 256), (1 << 18, 16)] {
        let args = vec![
            gpu::AbsValue::known(ir::Const::I64(n)),
            gpu::AbsValue::known(ir::Const::I64(m)),
            gpu::AbsValue::array(vec![n, m], ir::ScalarType::F32),
            gpu::AbsValue::array(vec![n, m], ir::ScalarType::F32),
        ];
        let h = gpu::simulate(&by_hand, &args, &t, &dev).unwrap();
        let c = gpu::simulate(&compiled.prog, &args, &t, &dev).unwrap();
        println!(
            "{:>12} {:>12} {:>14.1} {:>14.1}",
            n, m, h.microseconds, c.microseconds
        );
    }
    println!("\nThe hand schedule is unbeatable on its home shape and pays");
    println!("for it elsewhere — the paper's argument for letting the");
    println!("compiler keep every version (§2.2).");
}
