//! Offline stand-in for the `serde_json` crate.
//!
//! Provides an ordered JSON [`Value`] tree, compact and pretty
//! serializers, and a strict recursive-descent parser — enough for the
//! workspace's trace/report emission and for tests that validate emitted
//! JSON. Object member order is insertion order, which keeps emitted
//! traces and reports stable and diffable.

use std::fmt;

/// A JSON value. Numbers are stored as `f64`; integers up to 2^53 render
/// without a fractional part, which covers every counter in this
/// workspace.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from key/value pairs, preserving order.
    pub fn object(entries: Vec<(impl Into<String>, Value)>) -> Value {
        Value::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object member lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a member; panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self {
            Value::Object(entries) => {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
            }
            _ => panic!("insert on non-object JSON value"),
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.as_i64() {
            Some(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<f32> for Value {
    fn from(n: f32) -> Value {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Number(n as f64)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Hand-implemented conversion into the JSON tree — this workspace's
/// replacement for `#[derive(Serialize)]`.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Serialize compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; match serde_json's `null` for them.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug)]
pub struct Error {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document. Strict: rejects trailing garbage, trailing
/// commas, and unquoted keys.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are unsupported; traces emitted
                            // by this workspace never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of plain characters in one
                    // append. Stopping only at the ASCII bytes `"` and
                    // `\` keeps the slice on char boundaries, so one
                    // linear validation covers the whole run — large
                    // string payloads (program sources, hex-encoded
                    // buffers) parse in O(n), not O(n²).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::object(vec![
            ("name", Value::from("kernel/segmap")),
            ("ts", Value::from(12.5f64)),
            ("count", Value::from(42u64)),
            ("flags", Value::from(vec![1i64, 2, 3])),
            ("nested", Value::object(vec![("ok", Value::from(true))])),
        ]);
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&s).unwrap(), v);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&Value::from(42u64)).unwrap(), "42");
        assert_eq!(to_string(&Value::from(2.5f64)).unwrap(), "2.5");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te");
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    /// Large string payloads (program sources, hex-encoded buffers)
    /// must parse in linear time: the parser consumes maximal runs of
    /// plain characters instead of validating the rest of the input per
    /// character. This pins correctness of the run fast path around
    /// escapes, multi-byte UTF-8, and run boundaries.
    #[test]
    fn long_strings_with_mixed_content_roundtrip() {
        let mut payload = String::new();
        for i in 0..2000 {
            payload.push_str("abcdef0123456789");
            match i % 4 {
                0 => payload.push('\n'),
                1 => payload.push('"'),
                2 => payload.push('λ'),
                _ => payload.push('\\'),
            }
        }
        let v = Value::from(payload.as_str());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
        // A run that ends exactly at the closing quote.
        assert_eq!(
            from_str("\"plain tail\"").unwrap(),
            Value::from("plain tail")
        );
    }

    #[test]
    fn strict_parse_rejects_garbage() {
        assert!(from_str("{\"a\": 1,}").is_err());
        assert!(from_str("[1, 2] tail").is_err());
        assert!(from_str("{a: 1}").is_err());
    }

    #[test]
    fn object_get_and_insert() {
        let mut v = Value::object(vec![("a", Value::from(1i64))]);
        v.insert("b", Value::from(2i64));
        v.insert("a", Value::from(3i64));
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("c"), None);
    }
}
