//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! `StdRng` here is SplitMix64 — not ChaCha12 as in real rand — so
//! sequences differ from upstream, but every consumer in this workspace
//! seeds explicitly via `seed_from_u64` and only relies on determinism
//! within a build, which this preserves.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of `Rng::gen_range`; `T` is the
/// sampled output type, mirroring real rand so inference flows from the
/// use site into integer literals in the range expression.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w = r.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(1.5f32..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
