//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (Rust ≥ 1.63). The crossbeam signature differs
//! from std in two ways this shim preserves: the spawn closure receives
//! the scope as an argument, and `scope` returns a `Result` whose `Err`
//! carries a panic payload.

pub mod thread {
    use std::any::Any;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before this
    /// returns. Unlike crossbeam proper, an unjoined panicking child
    /// propagates the panic instead of surfacing through `Err` — callers
    /// in this workspace join every handle, so the difference is moot.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
