//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset backed by `std::sync`. The
//! semantic difference to real parking_lot that matters here: these locks
//! do not poison — a panic while holding the lock leaves it usable, which
//! matches parking_lot behaviour.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
