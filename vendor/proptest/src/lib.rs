//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_recursive`/`prop_shuffle`/`boxed`,
//! [`prop_oneof!`], `collection::vec`, `any::<T>()`, ranges and tuples as
//! strategies, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, chosen for an offline build:
//! - **No shrinking.** A failing case panics with the sampled inputs
//!   bound; rerunning is deterministic (the RNG is seeded from the test
//!   function's name), so failures still reproduce exactly.
//! - `*.proptest-regressions` files are honoured only when the config
//!   names one explicitly via [`test_runner::ProptestConfig::with_failure_persistence`].
//!   Each `cc <hex>` line's first 16 hex digits are taken as a 64-bit
//!   RNG state; persisted states are replayed before any novel cases,
//!   and a failing novel case appends its pre-case state to the file.

pub mod test_runner {
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    /// Per-test configuration; `cases` and `failure_persistence` are
    /// honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Explicit path to a `*.proptest-regressions` file. `None`
        /// (the default) disables persistence entirely — unlike real
        /// proptest there is no implicit source-file-derived path, so
        /// a config must opt in for regressions to replay.
        pub failure_persistence: Option<PathBuf>,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                failure_persistence: None,
            }
        }

        /// Set the regression file consulted before novel cases and
        /// appended to when a novel case fails.
        pub fn with_failure_persistence(mut self, path: impl Into<PathBuf>) -> ProptestConfig {
            self.failure_persistence = Some(path.into());
            self
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                failure_persistence: None,
            }
        }
    }

    /// Parse the persisted RNG states out of a `*.proptest-regressions`
    /// file: every line of the form `cc <hex> ...` contributes the
    /// integer value of its first 16 hex digits. Files written by real
    /// proptest (256-bit hex blobs) parse fine — the prefix is simply
    /// taken as an arbitrary deterministic seed.
    pub fn load_persisted_seeds(path: &Path) -> std::io::Result<Vec<u64>> {
        let text = std::fs::read_to_string(path)?;
        let mut seeds = Vec::new();
        for line in text.lines() {
            let Some(rest) = line.trim_start().strip_prefix("cc ") else {
                continue;
            };
            let hex: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .take(16)
                .collect();
            if hex.is_empty() {
                continue;
            }
            if let Ok(seed) = u64::from_str_radix(&hex, 16) {
                seeds.push(seed);
            }
        }
        Ok(seeds)
    }

    /// Append a failing case's pre-case RNG state to the regression
    /// file, creating it (with the conventional header) if absent.
    /// Errors are swallowed: persistence must never mask the original
    /// test failure.
    pub fn persist_seed(path: &Path, state: u64, test_name: &str) {
        let fresh = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        if fresh {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated.\n\
                 #\n\
                 # It is recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases."
            );
        }
        let _ = writeln!(f, "cc {state:016x} # failing case of {test_name}");
    }

    /// Outcome of one generated case; `Reject` comes from `prop_assume!`.
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject,
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Resume from a persisted state (a `cc` line in a regression
        /// file) — the generator picks up exactly where the failing
        /// run's pre-case snapshot left off.
        pub fn from_state(state: u64) -> TestRng {
            TestRng { state }
        }

        /// Snapshot the current state, taken before sampling a case so
        /// a failure can be persisted and replayed.
        pub fn state(&self) -> u64 {
            self.state
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n` (n > 0).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree and no shrinking: `sample` draws one value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { base: self }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }

        /// `depth` rounds of `recurse` folded over the base strategy;
        /// each round unions "stop here" with "recurse once more".
        /// `_desired_size` and `_expected_branch` are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(cur.clone()).boxed();
                cur = Union::new(vec![cur, deeper]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between alternatives (the engine behind
    /// `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// Values that `prop_shuffle` can permute.
    pub trait Shuffleable {
        fn shuffle_in_place(&mut self, rng: &mut TestRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle_in_place(&mut self, rng: &mut TestRng) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.below(i + 1);
                self.swap(i, j);
            }
        }
    }

    pub struct Shuffle<S> {
        base: S,
    }

    impl<S: Strategy> Strategy for Shuffle<S>
    where
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let mut v = self.base.sample(rng);
            v.shuffle_in_place(rng);
            v
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub struct FullRange<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange { _marker: std::marker::PhantomData }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;
        fn arbitrary() -> FullRange<bool> {
            FullRange {
                _marker: std::marker::PhantomData,
            }
        }
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for `collection::vec`: an exact `usize`, a
    /// half-open `Range<usize>`, or a `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below(self.hi - self.lo + 1);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }
}

/// The `prop::` namespace from `proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                let run_case = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&strategies, rng);
                    $body
                    ::std::result::Result::Ok(())
                };
                // Replay persisted failures before generating novel
                // cases, exactly like real proptest's `cc` lines.
                if let Some(path) = &config.failure_persistence {
                    let seeds = $crate::test_runner::load_persisted_seeds(path)
                        .unwrap_or_default();
                    for seed in seeds {
                        let mut replay_rng =
                            $crate::test_runner::TestRng::from_state(seed);
                        let _ = run_case(&mut replay_rng);
                    }
                }
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(config.cases);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let pre_state = rng.state();
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run_case(&mut rng)),
                    );
                    match outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                            accepted += 1;
                        }
                        ::std::result::Result::Ok(::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        )) => {}
                        ::std::result::Result::Err(payload) => {
                            if let Some(path) = &config.failure_persistence {
                                $crate::test_runner::persist_seed(
                                    path, pre_state, stringify!($name),
                                );
                            }
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in -5i64..5, b in 1u8..=3) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0i64..4).prop_map(|x| x * 2), 1..5),
            (x, flag) in (Just(7i64), any::<bool>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|e| e % 2 == 0));
            prop_assert_eq!(x, 7);
            let _ = flag;
        }

        #[test]
        fn shuffle_permutes(v in Just((0..8usize).collect::<Vec<usize>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..8).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn persisted_seeds_parse_cc_lines() {
        let dir = std::env::temp_dir().join(format!("proptest-standin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("load.proptest-regressions");
        std::fs::write(
            &path,
            "# comment line\n\
             cc 0123383cae5d68c9fe1fef9bc7148884f28ded445a5874abfc89de07daa39399 # shrinks to ...\n\
             cc 00000000000000ff\n\
             not a seed line\n",
        )
        .unwrap();
        let seeds = crate::test_runner::load_persisted_seeds(&path).unwrap();
        assert_eq!(seeds, vec![0x0123383cae5d68c9, 0xff]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persist_then_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("proptest-standin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.proptest-regressions");
        let _ = std::fs::remove_file(&path);
        crate::test_runner::persist_seed(&path, 0xdead_beef_0042_1111, "some_test");
        crate::test_runner::persist_seed(&path, 7, "some_test");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"), "header written once");
        let seeds = crate::test_runner::load_persisted_seeds(&path).unwrap();
        assert_eq!(seeds, vec![0xdead_beef_0042_1111, 7]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn config_with_failure_persistence_sets_path() {
        let cfg = ProptestConfig::with_cases(3).with_failure_persistence("/tmp/x.regressions");
        assert_eq!(cfg.cases, 3);
        assert_eq!(
            cfg.failure_persistence.as_deref(),
            Some(std::path::Path::new("/tmp/x.regressions"))
        );
    }

    #[test]
    fn oneof_and_recursive_sample() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = prop_oneof![(0i64..10).prop_map(Tree::Leaf)]
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::from_name("oneof_and_recursive");
        for _ in 0..200 {
            let t = crate::strategy::Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
