//! A small work-stealing thread pool for data-parallel index loops.
//!
//! The pool executes *jobs*: a job is `n_tasks` invocations of a shared
//! closure `f(task_index)`. Tasks are distributed round-robin over
//! per-worker deques; each worker pops from the back of its own deque
//! and, when empty, steals the front *half* of a victim's deque
//! (chunked stealing keeps contention low). The calling thread
//! participates in the job and only blocks once no queued task is left.
//!
//! Determinism is the caller's contract: the pool guarantees every task
//! index runs exactly once, but in no particular order — callers that
//! need deterministic results must make each task independent (e.g.
//! write to a private slot per task) and combine slots in task order.
//!
//! A pool with `threads == n` uses `n - 1` spawned workers plus the
//! caller. [`default_threads`] honours the `FLAT_EXEC_THREADS`
//! environment variable; explicit sizes come from [`pool_with`], which
//! caches one pool per size for the lifetime of the process.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One parallel invocation of a job: `n_tasks` calls of a shared closure.
struct Job {
    /// Lifetime-erased pointer to the caller's closure. Valid for the
    /// whole job: [`Pool::run`] blocks until `remaining` reaches zero
    /// before returning, so the referent outlives every task.
    func: *const (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    done: Mutex<bool>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `func` is only dereferenced while the caller is inside
// `Pool::run`, which keeps the closure alive; the closure itself is Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Task {
    job: Arc<Job>,
    index: usize,
}

struct PoolState {
    /// Bumped on every submission; lets sleeping workers distinguish
    /// "no work" from "work arrived while I was scanning".
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    deques: Vec<Mutex<VecDeque<Task>>>,
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A fixed-size work-stealing pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    threads: usize,
}

thread_local! {
    /// Set while a thread executes a task, so nested `run` calls execute
    /// inline instead of re-entering the pool (no deadlock, and nested
    /// parallelism inside a task stays sequential and deterministic).
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn run_task(task: Task) {
    // SAFETY: see the field invariant on `Job::func`.
    let func = unsafe { &*task.job.func };
    let was = IN_TASK.with(|c| c.replace(true));
    let result = catch_unwind(AssertUnwindSafe(|| func(task.index)));
    IN_TASK.with(|c| c.set(was));
    if let Err(payload) = result {
        let mut slot = task.job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if task.job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = task.job.done.lock().unwrap();
        *done = true;
        task.job.cv.notify_all();
    }
}

/// Pop from our own deque's back, else steal the front half of the first
/// non-empty victim deque (stolen surplus moves to our deque).
fn find_task(shared: &Shared, me: usize) -> Option<Task> {
    if let Some(t) = shared.deques[me].lock().unwrap().pop_back() {
        return Some(t);
    }
    let n = shared.deques.len();
    for k in 1..n {
        let victim = (me + k) % n;
        let mut stolen: VecDeque<Task> = {
            let mut v = shared.deques[victim].lock().unwrap();
            let take = v.len().div_ceil(2);
            v.drain(..take).collect()
        };
        if let Some(t) = stolen.pop_front() {
            if !stolen.is_empty() {
                let mut mine = shared.deques[me].lock().unwrap();
                mine.extend(stolen);
            }
            return Some(t);
        }
    }
    None
}

/// Steal a single task from the front of any deque (used by the caller,
/// which has no deque of its own).
fn steal_one(shared: &Shared) -> Option<Task> {
    for dq in &shared.deques {
        if let Some(t) = dq.lock().unwrap().pop_front() {
            return Some(t);
        }
    }
    None
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    let mut seen_epoch = 0u64;
    loop {
        if let Some(task) = find_task(&shared, me) {
            run_task(task);
            continue;
        }
        let mut st = shared.state.lock().unwrap();
        if st.shutdown {
            return;
        }
        if st.epoch == seen_epoch {
            st = shared.cv.wait(st).unwrap();
            if st.shutdown {
                return;
            }
        }
        seen_epoch = st.epoch;
    }
}

impl Pool {
    /// A pool that runs jobs on `threads` threads total (the caller
    /// counts as one; `threads - 1` workers are spawned). `threads == 1`
    /// (or 0) spawns nothing and runs every job inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("workpool: failed to spawn worker")
            })
            .collect();
        Pool {
            shared,
            handles: Mutex::new(handles),
            threads,
        }
    }

    /// Total threads this pool uses, caller included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0), f(1), ..., f(n_tasks - 1)`, each exactly once, in
    /// unspecified order, potentially in parallel. Returns when all
    /// tasks have finished. If any task panics, the first captured
    /// payload is resumed on the caller after the job drains.
    pub fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        if self.threads == 1 || n_tasks == 1 || IN_TASK.with(|c| c.get()) {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        // Erase the closure's lifetime; `Job::func`'s invariant (we
        // block below until the job drains) keeps this sound.
        let func: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        };
        let job = Arc::new(Job {
            func,
            remaining: AtomicUsize::new(n_tasks),
            done: Mutex::new(false),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let workers = self.shared.deques.len();
        for start in (0..n_tasks).step_by(workers) {
            for (w, index) in (start..(start + workers).min(n_tasks)).enumerate() {
                self.shared.deques[w].lock().unwrap().push_back(Task {
                    job: Arc::clone(&job),
                    index,
                });
            }
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            self.shared.cv.notify_all();
        }
        // Participate until no queued task is left, then wait for the
        // stragglers currently running on workers.
        while job.remaining.load(Ordering::Acquire) > 0 {
            match steal_one(&self.shared) {
                Some(task) => run_task(task),
                None => break,
            }
        }
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.cv.wait(done).unwrap();
        }
        drop(done);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// The default thread count: `FLAT_EXEC_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("FLAT_EXEC_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn registry() -> &'static Mutex<HashMap<usize, Arc<Pool>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<Pool>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A process-wide pool of exactly `threads` threads, created on first
/// use and cached for the lifetime of the process.
pub fn pool_with(threads: usize) -> Arc<Pool> {
    let threads = threads.max(1);
    let mut reg = registry().lock().unwrap();
    Arc::clone(
        reg.entry(threads)
            .or_insert_with(|| Arc::new(Pool::new(threads))),
    )
}

/// The process-wide default pool ([`default_threads`] threads; the
/// environment variable is read once, at first use).
pub fn global() -> Arc<Pool> {
    static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| pool_with(default_threads())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 2, 7, 100, 1000] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(10, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_run_executes_inline() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        pool.run(8, &|_| {
            // Nested: must not deadlock; runs inline on this thread.
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = Pool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 11 {
                    panic!("boom {i}");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must still be usable afterwards.
        let n = AtomicU64::new(0);
        pool.run(16, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_with_caches_per_size() {
        let a = pool_with(3);
        let b = pool_with(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        assert_eq!(pool_with(0).threads(), 1);
    }

    #[test]
    fn results_deterministic_across_thread_counts() {
        let compute = |pool: &Pool| -> Vec<u64> {
            let slots: Vec<Mutex<u64>> = (0..257).map(|_| Mutex::new(0)).collect();
            pool.run(257, &|i| {
                *slots[i].lock().unwrap() = (i as u64).wrapping_mul(0x9E3779B9);
            });
            slots.into_iter().map(|m| m.into_inner().unwrap()).collect()
        };
        let one = compute(&Pool::new(1));
        let four = compute(&Pool::new(4));
        let eight = compute(&Pool::new(8));
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }
}
