//! A small work-stealing thread pool for data-parallel index loops.
//!
//! The pool executes *jobs*: a job is `n_tasks` invocations of a shared
//! closure `f(task_index)`. Tasks are distributed round-robin over
//! per-worker deques; each worker pops from the back of its own deque
//! and, when empty, steals the front *half* of a victim's deque
//! (chunked stealing keeps contention low). The calling thread
//! participates in the job and only blocks once no queued task is left.
//!
//! Determinism is the caller's contract: the pool guarantees every task
//! index runs exactly once, but in no particular order — callers that
//! need deterministic results must make each task independent (e.g.
//! write to a private slot per task) and combine slots in task order.
//!
//! A pool with `threads == n` uses `n - 1` spawned workers plus the
//! caller. [`default_threads`] honours the `FLAT_EXEC_THREADS`
//! environment variable; explicit sizes come from [`pool_with`], which
//! caches one pool per size for the lifetime of the process.
//!
//! # Telemetry
//!
//! When enabled via [`Pool::set_telemetry`], the pool keeps per-thread
//! scheduler counters (tasks executed, local pops, steals, failed steal
//! scans, parks) and busy-nanosecond accounting in cache-line-aligned
//! per-worker cells — no shared atomics are touched on the task hot
//! path beyond the existing job bookkeeping, and counters are only
//! aggregated on demand by [`Pool::telemetry`]. Slot `i < workers()`
//! belongs to spawned worker `i`; the final slot accumulates everything
//! done by calling threads (which have no deque of their own). With
//! [`Pool::set_span_recording`] also on, every executed task leaves a
//! [`TaskSpan`] (slot, job tag, task index, start/duration in
//! nanoseconds since pool creation) for wall-clock timeline rendering.
//! Both switches are off by default and change nothing about task
//! decomposition or ordering, so results stay bit-identical.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// One parallel invocation of a job: `n_tasks` calls of a shared closure.
struct Job {
    /// Lifetime-erased pointer to the caller's closure. Valid for the
    /// whole job: [`Pool::run`] blocks until `remaining` reaches zero
    /// before returning, so the referent outlives every task.
    func: *const (dyn Fn(usize) + Sync),
    /// Caller-chosen label stamped onto recorded [`TaskSpan`]s.
    tag: u64,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `func` is only dereferenced while the caller is inside
// `Pool::run`, which keeps the closure alive; the closure itself is Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Task {
    job: Arc<Job>,
    index: usize,
}

struct PoolState {
    /// Bumped on every submission; lets sleeping workers distinguish
    /// "no work" from "work arrived while I was scanning".
    epoch: u64,
    shutdown: bool,
}

/// Per-thread scheduler counters, padded to a cache line so workers
/// never write-share. All loads/stores are `Relaxed`: each cell has a
/// single writer (its thread), and readers only need eventually-
/// consistent totals.
#[repr(align(64))]
#[derive(Default)]
struct TelemCell {
    tasks: AtomicU64,
    local_pops: AtomicU64,
    steals: AtomicU64,
    steal_fails: AtomicU64,
    parks: AtomicU64,
    busy_ns: AtomicU64,
}

/// One executed task, for timeline rendering. Times are nanoseconds
/// since the pool's creation (see [`Pool::now_ns`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpan {
    /// Telemetry slot that ran the task: `< workers()` for a spawned
    /// worker, `== workers()` for a calling thread.
    pub worker: usize,
    /// The `tag` passed to [`Pool::run_tagged`] (0 for plain `run`).
    pub tag: u64,
    pub index: usize,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Counters for one telemetry slot. `local_pops + steals` is the number
/// of task *acquisitions*, which equals `tasks` executed from that slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    pub tasks: u64,
    pub local_pops: u64,
    pub steals: u64,
    pub steal_fails: u64,
    pub parks: u64,
    pub busy_ns: u64,
}

impl WorkerTelemetry {
    fn delta_since(&self, earlier: &WorkerTelemetry) -> WorkerTelemetry {
        WorkerTelemetry {
            tasks: self.tasks.wrapping_sub(earlier.tasks),
            local_pops: self.local_pops.wrapping_sub(earlier.local_pops),
            steals: self.steals.wrapping_sub(earlier.steals),
            steal_fails: self.steal_fails.wrapping_sub(earlier.steal_fails),
            parks: self.parks.wrapping_sub(earlier.parks),
            busy_ns: self.busy_ns.wrapping_sub(earlier.busy_ns),
        }
    }
}

/// Aggregated pool counters: one entry per spawned worker, plus a final
/// entry for calling threads. Snapshots are cumulative since pool
/// creation; use [`PoolTelemetry::delta_since`] to scope to a region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    pub workers: Vec<WorkerTelemetry>,
}

impl PoolTelemetry {
    /// Sum over every slot.
    pub fn total(&self) -> WorkerTelemetry {
        let mut t = WorkerTelemetry::default();
        for w in &self.workers {
            t.tasks += w.tasks;
            t.local_pops += w.local_pops;
            t.steals += w.steals;
            t.steal_fails += w.steal_fails;
            t.parks += w.parks;
            t.busy_ns += w.busy_ns;
        }
        t
    }

    /// Per-slot difference against an earlier snapshot of the same pool.
    pub fn delta_since(&self, earlier: &PoolTelemetry) -> PoolTelemetry {
        PoolTelemetry {
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| match earlier.workers.get(i) {
                    Some(e) => w.delta_since(e),
                    None => *w,
                })
                .collect(),
        }
    }
}

struct Shared {
    deques: Vec<Mutex<VecDeque<Task>>>,
    state: Mutex<PoolState>,
    cv: Condvar,
    /// Telemetry master switch; when off, no counter is touched.
    telemetry: AtomicBool,
    /// Span recording (implies per-task clock reads); independent of
    /// `telemetry` in storage but only consulted when telemetry is on.
    spans: AtomicBool,
    /// Sessions currently holding telemetry on (see
    /// [`Pool::telemetry_session`]). The mutex serializes the 0↔1
    /// transitions that flip the `telemetry` flag.
    telem_users: Mutex<usize>,
    /// `true` while one session owns span recording; waiters queue on
    /// `span_cv`. Span sessions are exclusive because the span logs are
    /// drained wholesale.
    span_owner: Mutex<bool>,
    span_cv: Condvar,
    /// One cell per spawned worker, plus one shared by calling threads.
    cells: Vec<TelemCell>,
    /// Parallel to `cells`: recorded task spans per slot.
    span_logs: Vec<Mutex<Vec<TaskSpan>>>,
    /// Epoch for `now_ns`: pool creation time.
    t0: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    fn telemetry_on(&self) -> bool {
        self.telemetry.load(Ordering::Relaxed)
    }

    /// The telemetry slot of the current thread: its worker slot if it
    /// is one of *this* pool's workers, else the shared caller slot.
    fn slot_of_current(&self) -> usize {
        let me = self as *const Shared as usize;
        WORKER_SLOT.with(|c| {
            let (pool, slot) = c.get();
            if pool == me {
                slot
            } else {
                self.cells.len() - 1
            }
        })
    }

    fn record_span(&self, slot: usize, span: TaskSpan) {
        self.span_logs[slot].lock().unwrap().push(span);
    }
}

/// A fixed-size work-stealing pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    threads: usize,
}

thread_local! {
    /// Set while a thread executes a task, so nested `run` calls execute
    /// inline instead of re-entering the pool (no deadlock, and nested
    /// parallelism inside a task stays sequential and deterministic).
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// `(pool identity, slot)` of the pool this thread is a worker of;
    /// pool identity is the address of its `Shared`. `(0, 0)` when the
    /// thread is not a pool worker.
    static WORKER_SLOT: std::cell::Cell<(usize, usize)> =
        const { std::cell::Cell::new((0, 0)) };

    /// Set while this thread is inside a busy-accounted frame. A
    /// top-level *inline* job does not set `IN_TASK` (nested runs may
    /// still dispatch in parallel), so a counted frame can enclose
    /// other counted frames on the same thread; only the outermost one
    /// adds to `busy_ns`, keeping each slot's busy time an
    /// interval-disjoint subset of wall time (`busy_ns <= wall`).
    static BUSY_ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn run_task(shared: &Shared, task: Task) {
    // SAFETY: see the field invariant on `Job::func`.
    let func = unsafe { &*task.job.func };
    let was = IN_TASK.with(|c| c.replace(true));
    let telem = shared.telemetry_on();
    let was_busy = telem && BUSY_ACTIVE.with(|c| c.replace(true));
    let start = if telem { shared.now_ns() } else { 0 };
    let result = catch_unwind(AssertUnwindSafe(|| func(task.index)));
    if telem {
        let dur = shared.now_ns().saturating_sub(start);
        let slot = shared.slot_of_current();
        let cell = &shared.cells[slot];
        cell.tasks.fetch_add(1, Ordering::Relaxed);
        if !was_busy {
            cell.busy_ns.fetch_add(dur, Ordering::Relaxed);
        }
        BUSY_ACTIVE.with(|c| c.set(was_busy));
        if shared.spans.load(Ordering::Relaxed) {
            shared.record_span(
                slot,
                TaskSpan {
                    worker: slot,
                    tag: task.job.tag,
                    index: task.index,
                    start_ns: start,
                    dur_ns: dur,
                },
            );
        }
    }
    IN_TASK.with(|c| c.set(was));
    if let Err(payload) = result {
        let mut slot = task.job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if task.job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = task.job.done.lock().unwrap();
        *done = true;
        task.job.cv.notify_all();
    }
}

/// Pop from our own deque's back, else steal the front half of the first
/// non-empty victim deque (stolen surplus moves to our deque).
fn find_task(shared: &Shared, me: usize) -> Option<Task> {
    let telem = shared.telemetry_on();
    if let Some(t) = shared.deques[me].lock().unwrap().pop_back() {
        if telem {
            shared.cells[me].local_pops.fetch_add(1, Ordering::Relaxed);
        }
        return Some(t);
    }
    let n = shared.deques.len();
    for k in 1..n {
        let victim = (me + k) % n;
        let mut stolen: VecDeque<Task> = {
            let mut v = shared.deques[victim].lock().unwrap();
            let take = v.len().div_ceil(2);
            v.drain(..take).collect()
        };
        if let Some(t) = stolen.pop_front() {
            // Surplus tasks land in our own deque: the first is a
            // steal, the rest are counted as local pops when popped.
            if !stolen.is_empty() {
                let mut mine = shared.deques[me].lock().unwrap();
                mine.extend(stolen);
            }
            if telem {
                shared.cells[me].steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(t);
        }
    }
    if telem {
        shared.cells[me].steal_fails.fetch_add(1, Ordering::Relaxed);
    }
    None
}

/// Steal a single task from the front of any deque (used by the caller,
/// which has no deque of its own).
fn steal_one(shared: &Shared) -> Option<Task> {
    for dq in &shared.deques {
        if let Some(t) = dq.lock().unwrap().pop_front() {
            if shared.telemetry_on() {
                let slot = shared.slot_of_current();
                shared.cells[slot].steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(t);
        }
    }
    None
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    WORKER_SLOT.with(|c| c.set((Arc::as_ptr(&shared) as usize, me)));
    let mut seen_epoch = 0u64;
    loop {
        if let Some(task) = find_task(&shared, me) {
            run_task(&shared, task);
            continue;
        }
        let mut st = shared.state.lock().unwrap();
        if st.shutdown {
            return;
        }
        if st.epoch == seen_epoch {
            if shared.telemetry_on() {
                shared.cells[me].parks.fetch_add(1, Ordering::Relaxed);
            }
            st = shared.cv.wait(st).unwrap();
            if st.shutdown {
                return;
            }
        }
        seen_epoch = st.epoch;
    }
}

impl Pool {
    /// A pool that runs jobs on `threads` threads total (the caller
    /// counts as one; `threads - 1` workers are spawned). `threads == 1`
    /// (or 0) spawns nothing and runs every job inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            telemetry: AtomicBool::new(false),
            spans: AtomicBool::new(false),
            telem_users: Mutex::new(0),
            span_owner: Mutex::new(false),
            span_cv: Condvar::new(),
            cells: (0..workers + 1).map(|_| TelemCell::default()).collect(),
            span_logs: (0..workers + 1).map(|_| Mutex::new(Vec::new())).collect(),
            t0: Instant::now(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("workpool: failed to spawn worker")
            })
            .collect();
        Pool {
            shared,
            handles: Mutex::new(handles),
            threads,
        }
    }

    /// Total threads this pool uses, caller included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of spawned workers (`threads() - 1`); also the telemetry
    /// slot index reserved for calling threads.
    pub fn workers(&self) -> usize {
        self.threads - 1
    }

    /// Switch per-worker counter accounting on or off. Returns the
    /// previous setting. Off by default; flipping it never affects task
    /// decomposition or results.
    ///
    /// This is the raw switch; concurrent callers clobber each other's
    /// save/restore. Production callers sharing a cached pool should use
    /// [`Pool::telemetry_session`], which reference-counts the flag. Do
    /// not mix the two on the same pool.
    pub fn set_telemetry(&self, on: bool) -> bool {
        self.shared.telemetry.swap(on, Ordering::Relaxed)
    }

    pub fn telemetry_enabled(&self) -> bool {
        self.shared.telemetry_on()
    }

    /// Switch [`TaskSpan`] recording on or off (only consulted while
    /// telemetry is on). Returns the previous setting.
    ///
    /// Raw switch with the same caveat as [`Pool::set_telemetry`];
    /// prefer `telemetry_session(true)`, which also serializes span
    /// sessions so one run cannot drain another's spans.
    pub fn set_span_recording(&self, on: bool) -> bool {
        self.shared.spans.swap(on, Ordering::Relaxed)
    }

    /// Begin a reference-counted telemetry session: counters are on
    /// while at least one session is live and switch off when the last
    /// one drops, so concurrent runs on a shared (process-cached) pool
    /// cannot clobber each other's save/restore.
    ///
    /// With `record_spans`, the session additionally owns span
    /// recording *exclusively* — a second span session blocks until the
    /// first drops (span logs are drained wholesale, so two concurrent
    /// owners would steal each other's spans). Stale spans left by
    /// crashed or untracked writers are cleared on entry. While a span
    /// session is live, tasks of concurrent non-tracing jobs also hit
    /// the recording flag; they carry *their* job tag (0 for plain
    /// [`Pool::run`]), so a tracing caller that stamps its jobs with
    /// [`fresh_tag`] can filter the drained spans down to its own.
    pub fn telemetry_session(&self, record_spans: bool) -> TelemetrySession {
        let shared = Arc::clone(&self.shared);
        if record_spans {
            let mut owner = shared.span_owner.lock().unwrap();
            while *owner {
                owner = shared.span_cv.wait(owner).unwrap();
            }
            *owner = true;
        }
        {
            let mut users = shared.telem_users.lock().unwrap();
            *users += 1;
            if *users == 1 {
                shared.telemetry.store(true, Ordering::Relaxed);
            }
        }
        if record_spans {
            for log in &shared.span_logs {
                log.lock().unwrap().clear();
            }
            shared.spans.store(true, Ordering::Relaxed);
        }
        TelemetrySession {
            shared,
            spans: record_spans,
        }
    }

    /// Nanoseconds since pool creation — the clock [`TaskSpan`] times
    /// are expressed in, shared with callers so external events can be
    /// placed on the same timeline.
    pub fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }

    /// Cumulative counters per slot (spawned workers first, calling
    /// threads last). Cheap: one relaxed load per field per slot.
    pub fn telemetry(&self) -> PoolTelemetry {
        PoolTelemetry {
            workers: self
                .shared
                .cells
                .iter()
                .map(|c| WorkerTelemetry {
                    tasks: c.tasks.load(Ordering::Relaxed),
                    local_pops: c.local_pops.load(Ordering::Relaxed),
                    steals: c.steals.load(Ordering::Relaxed),
                    steal_fails: c.steal_fails.load(Ordering::Relaxed),
                    parks: c.parks.load(Ordering::Relaxed),
                    busy_ns: c.busy_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Drain every recorded [`TaskSpan`], sorted by start time.
    pub fn take_spans(&self) -> Vec<TaskSpan> {
        let mut all = Vec::new();
        for log in &self.shared.span_logs {
            all.append(&mut log.lock().unwrap());
        }
        all.sort_by_key(|s| (s.start_ns, s.worker, s.index));
        all
    }

    /// Run `f(0), f(1), ..., f(n_tasks - 1)`, each exactly once, in
    /// unspecified order, potentially in parallel. Returns when all
    /// tasks have finished. If any task panics, the first captured
    /// payload is resumed on the caller after the job drains.
    pub fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        self.run_tagged(n_tasks, 0, f);
    }

    /// Like [`Pool::run`], with a caller-chosen `tag` stamped onto any
    /// [`TaskSpan`]s this job records (e.g. a kernel-launch id).
    pub fn run_tagged(&self, n_tasks: usize, tag: u64, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        let nested = IN_TASK.with(|c| c.get());
        if self.threads == 1 || n_tasks == 1 || nested {
            // Nested runs are part of the enclosing task: its span and
            // busy time already cover them, so only top-level inline
            // jobs are accounted (as local pops on the current slot).
            if !nested && self.shared.telemetry_on() {
                self.run_inline_telemetered(n_tasks, tag, f);
            } else {
                for i in 0..n_tasks {
                    f(i);
                }
            }
            return;
        }
        // Erase the closure's lifetime; `Job::func`'s invariant (we
        // block below until the job drains) keeps this sound.
        let func: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        };
        let job = Arc::new(Job {
            func,
            tag,
            remaining: AtomicUsize::new(n_tasks),
            done: Mutex::new(false),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let workers = self.shared.deques.len();
        for start in (0..n_tasks).step_by(workers) {
            for (w, index) in (start..(start + workers).min(n_tasks)).enumerate() {
                self.shared.deques[w].lock().unwrap().push_back(Task {
                    job: Arc::clone(&job),
                    index,
                });
            }
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            self.shared.cv.notify_all();
        }
        // Participate until no queued task is left, then wait for the
        // stragglers currently running on workers.
        while job.remaining.load(Ordering::Acquire) > 0 {
            match steal_one(&self.shared) {
                Some(task) => run_task(&self.shared, task),
                None => break,
            }
        }
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.cv.wait(done).unwrap();
        }
        drop(done);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Inline execution with counters: every task is a "local pop" on
    /// the current slot, so `local_pops + steals == tasks` holds at
    /// every thread count. Clock reads are per job unless spans are
    /// being recorded.
    fn run_inline_telemetered(&self, n_tasks: usize, tag: u64, f: &(dyn Fn(usize) + Sync)) {
        let shared = &*self.shared;
        let slot = shared.slot_of_current();
        let cell = &shared.cells[slot];
        let spans = shared.spans.load(Ordering::Relaxed);
        let was_busy = BUSY_ACTIVE.with(|c| c.replace(true));
        let start = shared.now_ns();
        if spans {
            let mut at = start;
            for i in 0..n_tasks {
                f(i);
                let end = shared.now_ns();
                shared.record_span(
                    slot,
                    TaskSpan {
                        worker: slot,
                        tag,
                        index: i,
                        start_ns: at,
                        dur_ns: end.saturating_sub(at),
                    },
                );
                at = end;
            }
        } else {
            for i in 0..n_tasks {
                f(i);
            }
        }
        let dur = shared.now_ns().saturating_sub(start);
        cell.tasks.fetch_add(n_tasks as u64, Ordering::Relaxed);
        cell.local_pops.fetch_add(n_tasks as u64, Ordering::Relaxed);
        if !was_busy {
            cell.busy_ns.fetch_add(dur, Ordering::Relaxed);
        }
        BUSY_ACTIVE.with(|c| c.set(was_busy));
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// A live claim on a pool's telemetry switches; see
/// [`Pool::telemetry_session`]. Dropping the session releases its claim:
/// counters switch off when the last session drops, and a span session
/// disables recording and wakes the next waiting span owner.
pub struct TelemetrySession {
    shared: Arc<Shared>,
    spans: bool,
}

impl TelemetrySession {
    /// Whether this session owns span recording.
    pub fn recording_spans(&self) -> bool {
        self.spans
    }

    /// Drain every recorded [`TaskSpan`], sorted by start time. Only
    /// meaningful for a span session (others drain nothing: recording
    /// was never enabled on their behalf).
    pub fn take_spans(&self) -> Vec<TaskSpan> {
        let mut all = Vec::new();
        for log in &self.shared.span_logs {
            all.append(&mut log.lock().unwrap());
        }
        all.sort_by_key(|s| (s.start_ns, s.worker, s.index));
        all
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if self.spans {
            self.shared.spans.store(false, Ordering::Relaxed);
            let mut owner = self.shared.span_owner.lock().unwrap();
            *owner = false;
            self.shared.span_cv.notify_one();
        }
        let mut users = self.shared.telem_users.lock().unwrap();
        *users -= 1;
        if *users == 0 {
            self.shared.telemetry.store(false, Ordering::Relaxed);
        }
    }
}

/// A process-globally unique job tag (never 0, the "untagged" value).
/// Callers that trace spans on a shared pool stamp their jobs with
/// fresh tags so concurrently recorded foreign spans can be filtered
/// out by tag.
pub fn fresh_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The default thread count: `FLAT_EXEC_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("FLAT_EXEC_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn registry() -> &'static Mutex<HashMap<usize, Arc<Pool>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<Pool>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A process-wide pool of exactly `threads` threads, created on first
/// use and cached for the lifetime of the process.
pub fn pool_with(threads: usize) -> Arc<Pool> {
    let threads = threads.max(1);
    let mut reg = registry().lock().unwrap();
    Arc::clone(
        reg.entry(threads)
            .or_insert_with(|| Arc::new(Pool::new(threads))),
    )
}

/// The process-wide default pool ([`default_threads`] threads; the
/// environment variable is read once, at first use).
pub fn global() -> Arc<Pool> {
    static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| pool_with(default_threads())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 2, 7, 100, 1000] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(10, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_run_executes_inline() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        pool.run(8, &|_| {
            // Nested: must not deadlock; runs inline on this thread.
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = Pool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 11 {
                    panic!("boom {i}");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must still be usable afterwards.
        let n = AtomicU64::new(0);
        pool.run(16, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_with_caches_per_size() {
        let a = pool_with(3);
        let b = pool_with(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        assert_eq!(pool_with(0).threads(), 1);
    }

    #[test]
    fn results_deterministic_across_thread_counts() {
        let compute = |pool: &Pool| -> Vec<u64> {
            let slots: Vec<Mutex<u64>> = (0..257).map(|_| Mutex::new(0)).collect();
            pool.run(257, &|i| {
                *slots[i].lock().unwrap() = (i as u64).wrapping_mul(0x9E3779B9);
            });
            slots.into_iter().map(|m| m.into_inner().unwrap()).collect()
        };
        let one = compute(&Pool::new(1));
        let four = compute(&Pool::new(4));
        let eight = compute(&Pool::new(8));
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn telemetry_counts_reconcile() {
        for threads in [1usize, 4, 8] {
            let pool = Pool::new(threads);
            pool.set_telemetry(true);
            let before = pool.telemetry();
            let n_tasks = 300usize;
            let sink = AtomicU64::new(0);
            for _ in 0..3 {
                pool.run(n_tasks / 3, &|i| {
                    sink.fetch_add(i as u64, Ordering::Relaxed);
                });
            }
            let delta = pool.telemetry().delta_since(&before).total();
            assert_eq!(delta.tasks, n_tasks as u64, "threads={threads}");
            assert_eq!(
                delta.local_pops + delta.steals,
                delta.tasks,
                "threads={threads}: every executed task is acquired exactly once"
            );
        }
    }

    #[test]
    fn telemetry_slots_cover_workers_plus_caller() {
        let pool = Pool::new(4);
        assert_eq!(pool.telemetry().workers.len(), pool.workers() + 1);
        let single = Pool::new(1);
        assert_eq!(single.telemetry().workers.len(), 1);
    }

    #[test]
    fn spans_cover_every_task_with_the_job_tag() {
        for threads in [1usize, 4] {
            let pool = Pool::new(threads);
            pool.set_telemetry(true);
            pool.set_span_recording(true);
            pool.run_tagged(37, 99, &|_| {
                std::hint::black_box(3u64);
            });
            let spans = pool.take_spans();
            assert_eq!(spans.len(), 37, "threads={threads}");
            let mut seen: Vec<usize> = spans.iter().map(|s| s.index).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..37).collect::<Vec<_>>());
            assert!(spans.iter().all(|s| s.tag == 99));
            assert!(spans.iter().all(|s| s.worker <= pool.workers()));
            // Drained: a second take returns nothing.
            assert!(pool.take_spans().is_empty());
        }
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let pool = Pool::new(4);
        pool.set_span_recording(true);
        pool.run(64, &|_| {});
        assert_eq!(pool.telemetry().total().tasks, 0);
        assert!(pool.take_spans().is_empty());
    }
}
