//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! a minimal serialization story: the companion `serde_json` stand-in
//! defines a concrete `Value` tree plus a `ToJson` trait, and types
//! implement `ToJson` by hand instead of `#[derive(Serialize)]`. This
//! crate exists so manifests depending on `serde` still resolve; it
//! intentionally exports nothing but a marker trait.

/// Marker kept for source compatibility with `use serde::Serialize`.
/// Conversion itself goes through `serde_json::ToJson`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}
