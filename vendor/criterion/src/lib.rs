//! Offline stand-in for the `criterion` crate.
//!
//! Implements the builder/bencher API subset used by this workspace's
//! benches. Measurement is deliberately simple — warm-up, then a timed
//! batch of iterations, reporting mean wall-clock time per iteration —
//! with none of criterion's statistics. When the binary is invoked by
//! `cargo test` (which passes `--test`), each benchmark runs a single
//! iteration purely as a smoke test.

use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.settings.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.settings.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            settings: self.settings.clone(),
            _parent: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.settings, &name.into(), f);
        self
    }

    /// Criterion calls this after all groups; nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    settings: Settings,
    _parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&self.settings, &label, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(settings: &Settings, label: &str, mut f: F) {
    let mut b = Bencher {
        settings: settings.clone(),
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("  {label}: no iterations");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
    println!(
        "  {label}: {:.3} µs/iter ({} iters)",
        per_iter * 1e6,
        b.iters_done
    );
}

pub struct Bencher {
    settings: Settings,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn target_iters(&self) -> u64 {
        if self.settings.test_mode {
            1
        } else {
            self.settings.sample_size.max(1) as u64
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.settings.test_mode {
            let warm_until = Instant::now() + self.settings.warm_up_time;
            while Instant::now() < warm_until {
                black_box(routine());
            }
        }
        let deadline = Instant::now() + self.settings.measurement_time;
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters_done += 1;
            if self.iters_done >= self.target_iters() && Instant::now() >= deadline {
                break;
            }
            if self.settings.test_mode {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.settings.test_mode {
            let warm_until = Instant::now() + self.settings.warm_up_time;
            while Instant::now() < warm_until {
                let input = setup();
                black_box(routine(input));
            }
        }
        let deadline = Instant::now() + self.settings.measurement_time;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.iters_done >= self.target_iters() && Instant::now() >= deadline {
                break;
            }
            if self.settings.test_mode {
                break;
            }
        }
    }
}

/// Opaque value barrier (best-effort without unstable intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(1));
        let mut count = 0u64;
        g.bench_function("inc", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_consumes_setup() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(1));
        let mut total = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| total += v.len(), BatchSize::SmallInput)
        });
        assert!(total > 0);
    }
}
